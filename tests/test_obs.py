"""Tests for the ``repro.obs`` telemetry layer.

Covers the tracer (nesting, rank context, the disabled no-op fast path
and its <5 % overhead guard), the metrics registry (Prometheus text
round-trip, histogram semantics), the Chrome trace exporter (schema
validity for live spans and simulated kernel timelines), the shared
journal/trace timebase (satellite bugfix: timestamps never run
backwards, including across a resume), the inspect summarizer, and the
CLI flags that arm the layer.
"""

import io
import json
import math
import time
import timeit

import pytest

import repro.obs as obs
from repro.hw.kernelcost import KernelInvocation
from repro.hw.nvml import utilization_from_events
from repro.hw.streams import KernelEvent, LaunchMode, StreamSimulator
from repro.obs import log as obslog
from repro.obs import trace as obstrace
from repro.obs.export import (
    chrome_trace,
    kernel_events_to_chrome,
    queue_occupancy,
    validate_chrome_trace,
)
from repro.obs.inspect import (
    breakdowns_from_spans,
    eta_summary,
    imbalance_ratio,
    top_spans,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    get_registry,
    parse_prometheus,
)
from repro.obs.timebase import TIMEBASE, timestamp_pair
from repro.runtime.breakdown import BREAKDOWN_PHASES


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with the telemetry layer dark."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _mini_model():
    from repro.core import RTiModel, SimulationConfig
    from repro.fault import GaussianSource
    from repro.topo import build_mini_kochi

    mk = build_mini_kochi()
    model = RTiModel(mk.grid, mk.bathymetry, SimulationConfig(dt=mk.dt))
    model.set_initial_condition(
        GaussianSource(x0=4_000.0, y0=16_000.0, amplitude=2.0, sigma=2_500.0)
    )
    return model


# ---------------------------------------------------------------------------
# Timebase
# ---------------------------------------------------------------------------


class TestTimebase:
    def test_pair_is_monotone(self):
        pairs = [timestamp_pair() for _ in range(100)]
        monos = [m for _, m in pairs]
        walls = [w for w, _ in pairs]
        assert monos == sorted(monos)
        assert walls == sorted(walls)

    def test_wall_is_derived_not_reread(self):
        wall, mono = timestamp_pair()
        assert wall == pytest.approx(TIMEBASE.wall_of(mono))
        assert wall == pytest.approx(TIMEBASE.wall0 + mono * 1e-6)

    def test_journal_events_share_the_timebase(self, tmp_path):
        from repro.persist.journal import RunJournal

        j = RunJournal(tmp_path / "journal.jsonl")
        recs = [j.record("tick", i=i) for i in range(5)]
        # A "resumed process" reopens the same file and keeps appending.
        j2 = RunJournal(tmp_path / "journal.jsonl")
        recs += [j2.record("tock", i=i) for i in range(5)]
        monos = [r["ts_mono_us"] for r in recs]
        walls = [r["ts_wall"] for r in recs]
        assert monos == sorted(monos)
        assert walls == sorted(walls)
        for r in recs:
            assert r["ts_wall"] == pytest.approx(
                TIMEBASE.wall_of(r["ts_mono_us"]), abs=1e-3
            )

    def test_trace_spans_merge_monotone_with_journal(self, tmp_path):
        from repro.persist.journal import RunJournal

        obs.enable()
        j = RunJournal(tmp_path / "journal.jsonl")
        j.record("before")
        with obstrace.span("work"):
            time.sleep(0.001)
        j.record("after")
        spans = obs.get_tracer().export()
        merged = sorted(
            [(r["ts_mono_us"], r["event"]) for r in j.events()]
            + [(s["ts_us"], s["name"]) for s in spans
               if s["name"] == "work"]
        )
        assert [name for _, name in merged][:3] == [
            "before", "work", "after"
        ]


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_span_is_shared_noop(self):
        s1 = obstrace.span("NLMASS")
        s2 = obstrace.span("JNZ", cat="comm", level=3)
        assert s1 is s2 is obstrace._NOOP

    def test_spans_nest_and_record_depth(self):
        obs.enable()
        with obstrace.span("outer"):
            with obstrace.span("inner"):
                pass
        by_name = {s["name"]: s for s in obs.get_tracer().export()}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner"]["ts_us"] >= by_name["outer"]["ts_us"]

    def test_rank_context_propagates(self):
        obs.enable()
        obstrace.set_context(rank=3)
        try:
            with obstrace.span("PTP_Z", cat="comm"):
                pass
        finally:
            obstrace.set_context(rank=None)
        (s,) = [
            s for s in obs.get_tracer().export() if s["name"] == "PTP_Z"
        ]
        assert s["rank"] == 3

    def test_instant_records_zero_duration(self):
        obs.enable()
        obstrace.instant("degradation:drop_level", step=7)
        (s,) = obs.get_tracer().export()
        assert s["dur_us"] == 0.0
        assert s["args"]["step"] == 7
        (ev,) = [
            e for e in chrome_trace()["traceEvents"]
            if e["name"] == "degradation:drop_level"
        ]
        assert ev["ph"] == "i"

    def test_clear_drops_spans(self):
        obs.enable()
        with obstrace.span("x"):
            pass
        obs.get_tracer().clear()
        assert obs.get_tracer().export() == []

    def test_model_step_emits_every_breakdown_phase(self):
        obs.enable()
        model = _mini_model()
        model.run(2)
        names = {s["name"] for s in obs.get_tracer().export()}
        for phase in BREAKDOWN_PHASES:
            assert phase in names, f"phase {phase} not traced"
        assert "restrict" in names or "interp" in names

    def test_distributed_run_traces_ranks_and_halo(self):
        from repro.core import SimulationConfig
        from repro.fault import GaussianSource
        from repro.grid.block import Block
        from repro.grid.hierarchy import NestedGrid
        from repro.grid.level import GridLevel
        from repro.par.decomposition import Decomposition, RankWork, WorkItem
        from repro.par.driver import run_distributed
        from repro.validation import FlatBathymetry

        grid = NestedGrid([GridLevel(index=1, dx=100.0, blocks=[
            Block(0, 1, 0, 0, 24, 48), Block(1, 1, 24, 0, 24, 48)])])
        decomp = Decomposition(grid, (
            RankWork(0, 1, (WorkItem(grid.block(0)),)),
            RankWork(1, 1, (WorkItem(grid.block(1)),)),
        ))
        obs.enable()
        run_distributed(
            grid, FlatBathymetry(50.0),
            SimulationConfig(dt=1.0, boundary="wall"),
            decomp,
            GaussianSource(x0=2400.0, y0=2400.0, amplitude=1.0, sigma=600.0),
            n_steps=3,
        )
        spans = obs.get_tracer().export()
        assert {s["rank"] for s in spans if s["rank"] is not None} == {0, 1}
        names = {s["name"] for s in spans}
        assert {"halo_pack", "halo_recv", "halo_unpack"} <= names
        halo = get_registry().to_dict()["counters"][
            "repro_halo_bytes_total"
        ]
        assert halo > 0
        bds = breakdowns_from_spans(spans)
        assert [bd.rank for bd in bds] == [0, 1]
        assert imbalance_ratio(bds) >= 1.0

    def test_disabled_tracer_overhead_under_5_percent(self):
        """The <5 % guard: disabled span calls are too cheap to matter.

        Measured as (per-call disabled cost) x (span calls per step) x
        (steps) against the wall time of a real 50-step run — a stable
        bound, unlike an A/B wall-clock diff.
        """
        n_steps = 50
        model = _mini_model()
        t0 = time.perf_counter()
        model.run(n_steps)
        run_s = time.perf_counter() - t0

        obs.enable()
        probe = _mini_model()
        probe.run(2)
        spans_per_step = len(obs.get_tracer().spans()) / 2
        obs.disable()

        n_calls = 10_000
        per_call_s = (
            timeit.timeit(lambda: obstrace.span("NLMASS"), number=n_calls)
            / n_calls
        )
        overhead = per_call_s * spans_per_step * n_steps / run_s
        assert overhead < 0.05, (
            f"disabled tracer costs {overhead:.2%} of a {n_steps}-step run "
            f"({per_call_s * 1e9:.0f} ns/call, "
            f"{spans_per_step:.0f} spans/step)"
        )


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_only_goes_up(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_steps_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g", labels={"q": "0"}) is not reg.gauge(
            "g", labels={"q": "1"}
        )
        with pytest.raises(ValueError):
            reg.gauge("a")  # already a counter

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("h", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.cumulative_counts() == [1, 2, 3, 4]
        assert h.count == 4
        assert h.sum == pytest.approx(5.555)
        assert h.quantile(0.5) == 0.1

    def test_prometheus_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("repro_halo_bytes_total", "halo bytes").inc(1024)
        reg.gauge("repro_steps_per_second").set(42.5)
        reg.gauge(
            "repro_queue_occupancy", labels={"queue": "0"}
        ).set(0.75)
        h = reg.histogram(
            "repro_step_seconds", buckets=(0.01, 0.1)
        )
        h.observe(0.05)
        h.observe(0.5)
        samples = parse_prometheus(reg.to_prometheus())
        assert samples["repro_halo_bytes_total"] == 1024
        assert samples["repro_steps_per_second"] == 42.5
        assert samples['repro_queue_occupancy{queue="0"}'] == 0.75
        assert samples['repro_step_seconds_bucket{le="0.01"}'] == 0
        assert samples['repro_step_seconds_bucket{le="0.1"}'] == 1
        assert samples['repro_step_seconds_bucket{le="+Inf"}'] == 2
        assert samples["repro_step_seconds_sum"] == pytest.approx(0.55)
        assert samples["repro_step_seconds_count"] == 2
        # Derived quantile gauges (bucket upper bounds) round-trip too:
        # one of two observations fell in the 0.1 bucket, the other past
        # the last finite bound.
        assert samples["repro_step_seconds_p50"] == 0.1
        assert samples["repro_step_seconds_p95"] == math.inf
        assert samples["repro_step_seconds_p99"] == math.inf

    def test_prometheus_quantiles_skip_empty_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("repro_empty_seconds", buckets=(0.1, 1.0))
        text = reg.to_prometheus()
        assert "repro_empty_seconds_count" in text
        assert "repro_empty_seconds_p50" not in text

    def test_empty_histogram_prometheus_text_exact(self):
        # Regression: an empty histogram must export zero buckets/sum/
        # count and no derived quantile gauges — and never the token
        # `nan`, which scrapers reject.
        reg = MetricsRegistry()
        reg.histogram("repro_empty_seconds", "t", buckets=(0.1, 1.0))
        assert reg.to_prometheus() == (
            "# HELP repro_empty_seconds t\n"
            "# TYPE repro_empty_seconds histogram\n"
            'repro_empty_seconds_bucket{le="0.1"} 0\n'
            'repro_empty_seconds_bucket{le="1"} 0\n'
            'repro_empty_seconds_bucket{le="+Inf"} 0\n'
            "repro_empty_seconds_sum 0\n"
            "repro_empty_seconds_count 0\n"
        )

    def test_empty_histogram_quantile_is_zero_not_nan(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        for q in (0.0, 0.5, 0.99, 1.0):
            v = h.quantile(q)
            assert v == 0.0 and not math.isnan(v)

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a sample\n")

    def test_exemplar_prometheus_text_exact(self):
        # One observation with a trace_id: its bucket line (and only its
        # bucket line) carries an OpenMetrics exemplar suffix.
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", "t", buckets=(0.1, 1.0))
        h.observe(0.05, trace_id="req-3")
        h.observe(0.5)  # no trace_id -> no exemplar on the 1.0 bucket
        text = reg.to_prometheus()
        assert ('repro_lat_seconds_bucket{le="0.1"} 1 '
                '# {trace_id="req-3"} 0.05') in text
        assert 'repro_lat_seconds_bucket{le="1"} 2\n' in text

    def test_parse_prometheus_collects_exemplars(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_lat_seconds", labels={"class": "critical"},
            buckets=(0.1, 1.0),
        )
        h.observe(0.05, trace_id="req-1")
        h.observe(12.0, trace_id="req-2")
        exemplars: dict = {}
        samples = parse_prometheus(reg.to_prometheus(), exemplars)
        key = 'repro_lat_seconds_bucket{class="critical",le="0.1"}'
        assert samples[key] == 1
        assert exemplars[key] == {"trace_id": "req-1", "value": 0.05}
        inf_key = 'repro_lat_seconds_bucket{class="critical",le="+Inf"}'
        assert exemplars[inf_key] == {"trace_id": "req-2", "value": 12.0}

    def test_exemplar_keeps_most_recent_per_bucket(self):
        h = Histogram("h", buckets=(1.0,))
        h.observe(0.2, trace_id="old")
        h.observe(0.3, trace_id="new")
        assert h.exemplars[0] == ("new", 0.3)

    def test_bad_observations_counted_and_skipped(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds", buckets=(1.0,))
        h.observe(0.5)
        h.observe(math.nan)
        h.observe(-1.0, trace_id="req-9")
        assert h.count == 1 and h.sum == pytest.approx(0.5)
        assert h.bad_observations == 2
        # The poison never lands in a bucket or exemplar slot...
        assert h.cumulative_counts() == [1, 1]
        assert h.exemplars == [None, None]
        # ...but is loudly metered in both export formats.
        samples = parse_prometheus(reg.to_prometheus())
        assert samples["repro_metrics_bad_observations_total"] == 2
        assert reg.to_dict()["counters"][
            "repro_metrics_bad_observations_total"] == 2

    def test_clean_registry_omits_bad_observation_counter(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat_seconds", buckets=(1.0,)).observe(0.5)
        assert "bad_observations" not in reg.to_prometheus()

    def test_metrics_json_snapshot(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        path = reg.write_json(tmp_path / "metrics.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro.obs.metrics/1"
        assert doc["counters"]["c"] == 3

    def test_step_metrics_collected_when_enabled(self):
        obs.enable()
        model = _mini_model()
        model.run(3)
        doc = get_registry().to_dict()
        assert doc["counters"]["repro_steps_total"] == 3
        assert doc["gauges"]["repro_steps_per_second"] > 0
        assert doc["gauges"]["repro_cells_per_second"] > 0

    def test_no_metrics_collected_when_disabled(self):
        model = _mini_model()
        model.run(2)
        assert get_registry().to_dict()["counters"] == {}


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestChromeExport:
    def test_live_span_trace_is_schema_valid(self):
        obs.enable()
        model = _mini_model()
        model.run(2)
        doc = chrome_trace()
        assert validate_chrome_trace(doc) == []
        names = {
            ev["name"] for ev in doc["traceEvents"] if ev["ph"] == "X"
        }
        for phase in BREAKDOWN_PHASES:
            assert phase in names

    def test_trace_carries_clock_sync_metadata(self):
        doc = chrome_trace()
        sync = [
            ev for ev in doc["traceEvents"] if ev["name"] == "clock_sync"
        ]
        assert sync and sync[0]["args"]["wall_epoch_s"] == TIMEBASE.wall0

    def test_kernel_events_render_one_track_per_queue(self):
        from repro.hw import get_system

        sim = StreamSimulator(
            get_system("squid-gpu").platform, n_queues=2,
            mode=LaunchMode.ASYNC,
        )
        for i in range(4):
            sim.submit(KernelInvocation("NLMASS", 10_000, f"k{i}"))
        res = sim.run()
        events = kernel_events_to_chrome(res.events)
        assert validate_chrome_trace({"traceEvents": events}) == []
        tids = {ev["tid"] for ev in events if ev["ph"] == "X"}
        assert tids == {ev.queue for ev in res.events}

    def test_validator_flags_broken_events(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "pid": 0, "tid": 0, "ts": 1.0, "dur": -5.0},
                "not an object",
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("lacks 'name'" in p for p in problems)
        assert any("non-negative 'dur'" in p for p in problems)
        assert any("not an object" in p for p in problems)
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not a list"
        ]


class TestQueueOccupancyAndUtilization:
    @staticmethod
    def _ev(queue, start, end):
        return KernelEvent(
            label="k", routine="NLMASS", queue=queue,
            enqueue_us=start, start_us=start, end_us=end, bytes_moved=0.0,
        )

    def test_occupancy_per_queue(self):
        events = [self._ev(0, 0, 50), self._ev(1, 0, 100)]
        occ = queue_occupancy(events, makespan_us=100.0)
        assert occ == {0: 0.5, 1: 1.0}

    def test_occupancy_zero_makespan_is_empty(self):
        assert queue_occupancy([self._ev(0, 0, 1)], 0.0) == {}
        assert queue_occupancy([], -1.0) == {}

    def test_utilization_empty_events(self):
        assert utilization_from_events([], 100.0) == 0.0

    def test_utilization_zero_makespan(self):
        assert utilization_from_events([self._ev(0, 0, 10)], 0.0) == 0.0

    def test_utilization_overlapping_intervals_union(self):
        # [0, 60) and [40, 80) overlap: union is 80, not 100.
        events = [self._ev(0, 0, 60), self._ev(1, 40, 80)]
        assert utilization_from_events(events, 100.0) == pytest.approx(0.8)

    def test_utilization_disjoint_intervals_sum(self):
        events = [self._ev(0, 0, 20), self._ev(1, 50, 70)]
        assert utilization_from_events(events, 100.0) == pytest.approx(0.4)


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------


class TestLog:
    @pytest.fixture(autouse=True)
    def _restore_config(self):
        yield
        obslog.configure(level="warning", json_mode=False, stream=None)
        obslog.set_context(rank=None, run=None)

    def test_json_mode_emits_parseable_records(self):
        sink = io.StringIO()
        obslog.configure(level="info", json_mode=True, stream=sink)
        obslog.get_logger("t").info("hello", step=3)
        rec = json.loads(sink.getvalue())
        assert rec["event"] == "hello"
        assert rec["step"] == 3
        assert rec["level"] == "info"
        assert "ts_mono_us" in rec and "ts_wall" in rec

    def test_threshold_filters(self):
        sink = io.StringIO()
        obslog.configure(level="warning", stream=sink)
        obslog.get_logger("t").info("dropped")
        obslog.get_logger("t").warning("kept")
        assert "dropped" not in sink.getvalue()
        assert "kept" in sink.getvalue()

    def test_context_binds_to_records(self):
        sink = io.StringIO()
        obslog.configure(level="info", json_mode=True, stream=sink)
        obslog.set_context(rank=2)
        obslog.get_logger("t").info("x")
        assert json.loads(sink.getvalue())["rank"] == 2

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obslog.configure(level="loud")


# ---------------------------------------------------------------------------
# Inspection
# ---------------------------------------------------------------------------


class TestInspect:
    def test_breakdowns_fold_spans_by_rank_and_phase(self):
        spans = [
            {"name": "NLMASS", "rank": 0, "dur_us": 10.0},
            {"name": "NLMASS", "rank": 0, "dur_us": 5.0},
            {"name": "PTP_Z", "rank": 1, "dur_us": 30.0},
            {"name": "interp", "rank": 0, "dur_us": 99.0},  # not a phase
            {"name": "NLMNT2", "rank": None, "dur_us": 7.0},  # -> rank 0
        ]
        bds = breakdowns_from_spans(spans)
        assert [bd.rank for bd in bds] == [0, 1]
        assert bds[0].phases["NLMASS"].busy_us == 15.0
        assert bds[0].phases["NLMNT2"].busy_us == 7.0
        assert bds[1].phases["PTP_Z"].busy_us == 30.0

    def test_imbalance_ratio(self):
        spans = [
            {"name": "NLMASS", "rank": 0, "dur_us": 10.0},
            {"name": "NLMASS", "rank": 1, "dur_us": 30.0},
        ]
        assert imbalance_ratio(breakdowns_from_spans(spans)) == 1.5
        assert imbalance_ratio([]) == 1.0

    def test_top_spans_sorted_desc(self):
        spans = [
            {"name": "a", "dur_us": 1.0},
            {"name": "b", "dur_us": 3.0},
            {"name": "c", "dur_us": 0.0},  # zero-duration excluded
            {"name": "d", "dur_us": 2.0},
        ]
        assert [s["name"] for s in top_spans(spans, 2)] == ["b", "d"]

    def test_eta_summary_reports_projection_error(self):
        events = [
            {"event": "forecast_start", "deadline_s": 100.0},
            {
                "event": "degradation", "action": "drop_level",
                "step": 40, "projected_s": 120.0, "deadline_s": 100.0,
            },
            {"event": "forecast_complete", "elapsed_s": 90.0},
        ]
        lines = "\n".join(eta_summary(events))
        assert "deadline" in lines
        assert "met" in lines
        assert "+30.0 s" in lines  # projected 120 vs actual 90

    def test_inspect_traced_cli_run_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        rundir = tmp_path / "run"
        assert main([
            "forecast", "--minutes", "0.05",
            "--rundir", str(rundir),
            "--export-trace", "--export-metrics",
        ]) == 0
        assert (rundir / "trace.json").exists()
        assert (rundir / "metrics.json").exists()
        doc = json.loads((rundir / "trace.json").read_text())
        assert validate_chrome_trace(doc) == []
        capsys.readouterr()

        assert main(["inspect", str(rundir)]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out
        assert "rank imbalance" in out
        assert "NLMASS" in out
        assert "slowest spans" in out
        assert "throughput" in out

    def test_inspect_untraced_rundir_suggests_flag(self, tmp_path, capsys):
        from repro.cli import main

        # Distinct exit code + structured JSON error (satellite c).
        assert main(["inspect", str(tmp_path)]) == 4
        err = json.loads(capsys.readouterr().out)["error"]
        assert err["code"] == "no-spans"
        assert "--export-trace" in err["hint"]

    def test_inspect_missing_dir_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["inspect", str(tmp_path / "nope")]) == 3
        err = json.loads(capsys.readouterr().out)["error"]
        assert err["code"] == "rundir-missing"

    def test_export_trace_explicit_path(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "custom.json"
        assert main([
            "forecast", "--minutes", "0.02",
            "--export-trace", str(target),
        ]) == 0
        doc = json.loads(target.read_text())
        assert validate_chrome_trace(doc) == []
        capsys.readouterr()
