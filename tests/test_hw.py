"""Tests for the hardware model (repro.hw)."""

import math

import numpy as np
import pytest

from repro.errors import PlatformError
from repro.hw import (
    CacheModel,
    KernelInvocation,
    LaunchMode,
    PLATFORMS,
    SYSTEMS,
    StreamSimulator,
    get_platform,
    get_system,
    kernel_solo_time_us,
    utilization_from_events,
)
from repro.hw.cache import WORKING_SET_BYTES_PER_CELL
from repro.hw.kernelcost import ROUTINE_BYTES_PER_CELL, kernel_saturated_time_us
from repro.hw.nvml import nvml_report
from repro.hw.platform import NodeSpec, PlatformSpec
from repro.hw.registry import cache_model_for


class TestPlatformSpec:
    def test_registry_has_table2_systems(self):
        for key in ("aoba-s", "squid-gpu", "squid-cpu", "pegasus-gpu", "pegasus-cpu"):
            assert get_system(key).name

    def test_unknown_keys_raise(self):
        with pytest.raises(PlatformError):
            get_platform("cray-1")
        with pytest.raises(PlatformError):
            get_system("fugaku")

    def test_invalid_spec_rejected(self):
        with pytest.raises(PlatformError):
            PlatformSpec(name="x", kind="tpu", mem_bw_gbs=100.0)
        with pytest.raises(PlatformError):
            PlatformSpec(name="x", kind="gpu", mem_bw_gbs=-1.0)
        with pytest.raises(PlatformError):
            PlatformSpec(name="x", kind="gpu", mem_bw_gbs=1.0, efficiency=2.0)

    def test_solo_bw_relation(self):
        p = get_platform("a100-sxm4")
        assert p.solo_bw_gbs == pytest.approx(
            p.mem_bw_gbs * p.efficiency * p.solo_fraction
        )

    def test_cache_model_only_for_cpus(self):
        assert cache_model_for(get_platform("a100-sxm4")) is None
        assert cache_model_for(get_platform("xeon-8368")) is not None


class TestKernelCost:
    def test_known_routines(self):
        for r in ("NLMASS", "NLMNT2", "OUTPUT", "PACK", "UNPACK"):
            assert ROUTINE_BYTES_PER_CELL[r] > 0

    def test_unknown_routine_rejected(self):
        with pytest.raises(PlatformError):
            KernelInvocation("FOO", 100)

    def test_bytes_scale_with_cells(self):
        a = KernelInvocation("NLMNT2", 1000)
        b = KernelInvocation("NLMNT2", 2000)
        assert b.bytes_moved == pytest.approx(2 * a.bytes_moved)

    def test_solo_time_monotone(self):
        p = get_platform("a100-sxm4")
        t1 = kernel_solo_time_us(KernelInvocation("NLMNT2", 100_000), p)
        t2 = kernel_solo_time_us(KernelInvocation("NLMNT2", 500_000), p)
        assert t2 > t1 > p.kernel_fixed_us

    def test_saturated_faster_than_solo(self):
        p = get_platform("a100-sxm4")
        k = KernelInvocation("NLMNT2", 500_000)
        assert kernel_saturated_time_us(k, p) < kernel_solo_time_us(k, p)


class TestStreamSimulator:
    def p(self):
        return get_platform("a100-sxm4")

    def test_sync_serializes_with_launch_overhead(self):
        p = self.p()
        sim = StreamSimulator(p, mode=LaunchMode.SYNC, traffic_multiplier=1.0)
        k = KernelInvocation("NLMNT2", 100_000)
        sim.submit_all([k, k])
        res = sim.run()
        assert len(res.events) == 2
        single = kernel_solo_time_us(k, p) + p.launch_overhead_us
        assert res.makespan_us == pytest.approx(2 * single)

    def test_async_one_queue_hides_launch(self):
        p = self.p()
        k = KernelInvocation("NLMNT2", 100_000)
        sync = StreamSimulator(p, mode=LaunchMode.SYNC, traffic_multiplier=1.0)
        sync.submit_all([k] * 8)
        t_sync = sync.run().makespan_us
        a1 = StreamSimulator(p, n_queues=1, mode=LaunchMode.ASYNC, traffic_multiplier=1.0)
        a1.submit_all([k] * 8)
        t_async = a1.run().makespan_us
        assert t_async < t_sync

    def test_more_queues_saturate(self):
        # With no fixed phase the plateau at 1/solo_fraction queues is
        # exact: 4 concurrent kernels at 25% each saturate the device.
        p = PlatformSpec(
            name="ideal-gpu",
            kind="gpu",
            mem_bw_gbs=1000.0,
            solo_fraction=0.25,
            enqueue_us=0.0,
        )
        k = KernelInvocation("NLMNT2", 400_000)
        times = {}
        for q in (1, 2, 4, 8):
            sim = StreamSimulator(p, n_queues=q, traffic_multiplier=1.0)
            sim.submit_all([k] * 16)
            times[q] = sim.run().makespan_us
        assert times[2] == pytest.approx(times[1] / 2)
        assert times[4] == pytest.approx(times[1] / 4)
        # Saturation: 8 queues gain nothing over 4 (the Fig. 10 plateau).
        assert times[8] == pytest.approx(times[4])

    def test_fixed_phase_overlap_helps_beyond_saturation(self):
        # With a fixed phase, extra queues still help a little because
        # fixed phases of some kernels overlap transfers of others — the
        # "better overlap between blocks" the paper observes in Fig. 6.
        p = self.p()
        k = KernelInvocation("NLMNT2", 400_000)
        times = {}
        for q in (4, 8):
            sim = StreamSimulator(p, n_queues=q, traffic_multiplier=1.0)
            sim.submit_all([k] * 16)
            times[q] = sim.run().makespan_us
        assert times[4] * 0.5 < times[8] <= times[4]

    def test_queue_fifo_order(self):
        p = self.p()
        sim = StreamSimulator(p, n_queues=1, traffic_multiplier=1.0)
        sim.submit_all(
            [KernelInvocation("NLMNT2", 100_000, label=f"k{i}") for i in range(3)]
        )
        res = sim.run()
        labels = [e.label for e in sorted(res.events, key=lambda e: e.start_us)]
        assert labels == ["k0", "k1", "k2"]

    def test_merged_kernel_uses_full_bandwidth(self):
        p = self.p()
        big = KernelInvocation("NLMNT2", 3_000_000, solo_fraction=1.0)
        capped = KernelInvocation("NLMNT2", 3_000_000, solo_fraction=0.25)
        t_big = StreamSimulator(p, traffic_multiplier=1.0)
        t_big.submit(big)
        t_cap = StreamSimulator(p, traffic_multiplier=1.0)
        t_cap.submit(capped)
        assert t_big.run().makespan_us < t_cap.run().makespan_us

    def test_size_dependent_saturation(self):
        # Above saturation_cells a lone kernel attains full bandwidth.
        p = self.p()
        k = KernelInvocation("NLMNT2", int(2 * p.saturation_cells))
        sim = StreamSimulator(p, traffic_multiplier=1.0)
        sim.submit(k)
        res = sim.run()
        expected = p.kernel_fixed_us + 1e-3 * k.bytes_moved / p.effective_bw_gbs
        assert res.events[0].duration_us == pytest.approx(expected, rel=1e-6)

    def test_empty_batch(self):
        sim = StreamSimulator(self.p())
        res = sim.run()
        assert res.makespan_us == 0.0
        assert res.events == []

    def test_bad_queue_count(self):
        with pytest.raises(PlatformError):
            StreamSimulator(self.p(), n_queues=0)

    def test_utilization_consistency(self):
        p = self.p()
        sim = StreamSimulator(p, n_queues=4, traffic_multiplier=1.0)
        sim.submit_all([KernelInvocation("NLMNT2", 200_000)] * 12)
        res = sim.run()
        # Internal busy accounting vs interval-union recomputation.
        assert res.gpu_utilization == pytest.approx(
            utilization_from_events(res.events, res.makespan_us), rel=1e-9
        )
        rep = nvml_report(res)
        assert 0.0 < rep["memory_utilization"] <= rep["gpu_utilization"] <= 1.0

    def test_traffic_multiplier_scales_time(self):
        p = self.p()
        k = KernelInvocation("NLMNT2", 1_000_000)
        t1 = StreamSimulator(p, traffic_multiplier=1.0)
        t1.submit(k)
        t9 = StreamSimulator(p, traffic_multiplier=9.0)
        t9.submit(k)
        d1 = t1.run().events[0].duration_us - p.kernel_fixed_us
        d9 = t9.run().events[0].duration_us - p.kernel_fixed_us
        assert d9 == pytest.approx(9 * d1, rel=1e-9)


class TestCacheModel:
    def model(self):
        return CacheModel(l3_mb=57.0, dram_bw_gbs=80.0, l3_bw_gbs=150.0)

    def test_measured_anchors_reproduced(self):
        cm = self.model()
        # The LIKWID anchors: ws/L3 ratios 7.46, 3.73, 1.87 -> 33/14/3 %.
        for ratio, miss in ((7.46, 0.33), (3.73, 0.14), (1.87, 0.03)):
            assert cm.miss_rate(ratio * 57.0e6) == pytest.approx(miss, rel=0.02)

    def test_miss_monotone_in_ws(self):
        cm = self.model()
        ws = np.geomspace(1e6, 1e10, 20)
        miss = [cm.miss_rate(w) for w in ws]
        assert all(a <= b + 1e-12 for a, b in zip(miss, miss[1:]))

    def test_miss_clamped_to_one(self):
        assert self.model().miss_rate(1e13) <= 1.0

    def test_effective_bw_between_dram_and_l3(self):
        cm = self.model()
        for ws in (1e7, 1e8, 1e9):
            bw = cm.effective_bw_gbs(ws)
            assert 80.0 * 0.9 <= bw <= 150.0

    def test_superlinear_scaling_mechanism(self):
        # Halving the working set must raise the effective bandwidth:
        # that is the Fig. 15 super-linear CPU speedup.
        cm = self.model()
        ws8 = 47.2e6 * WORKING_SET_BYTES_PER_CELL / 8
        ws16 = ws8 / 2
        assert cm.effective_bw_gbs(ws16) > cm.effective_bw_gbs(ws8)

    def test_invalid_params(self):
        with pytest.raises(PlatformError):
            CacheModel(l3_mb=0.0, dram_bw_gbs=80.0, l3_bw_gbs=150.0)


class TestNodeSpec:
    def test_validation(self):
        p = get_platform("a100-sxm4")
        with pytest.raises(PlatformError):
            NodeSpec(platform=p, devices_per_node=0, nics_per_node=1, nic_bw_gbs=10.0)
