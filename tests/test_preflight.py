"""Tests for the preflight validation gauntlet (repro.persist.preflight).

The acceptance bar: ``repro validate`` rejects at least six distinct
classes of broken input — negative-depth (dry) bathymetry, non-3:1
nesting, CFL-violating time step, out-of-bounds fault, overlapping
blocks, and a snapshot schema-version mismatch — each with an
actionable message, while the shipped Kochi example passes clean.
"""

import copy
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.persist import (
    Finding,
    RunStore,
    start_run,
    validate_rundir,
    validate_scenario,
)

EXAMPLE = Path(__file__).resolve().parent.parent / "examples" / "kochi_scenario.json"

BASE_SPEC = {
    "grid": {
        "ratio": 3,
        "levels": [
            {"index": 1, "dx": 300.0, "blocks": [[0, 1, 0, 0, 12, 12]]},
            {"index": 2, "dx": 100.0, "blocks": [[1, 2, 9, 9, 12, 12]]},
        ],
    },
    "bathymetry": {"type": "flat", "depth": 50.0},
    "dt": 1.0,
    "n_steps": 10,
    "source": {
        "type": "gaussian",
        "x0": 1_800.0,
        "y0": 1_800.0,
        "amplitude": 1.0,
        "sigma": 600.0,
    },
}


def spec_with(**overrides) -> dict:
    spec = copy.deepcopy(BASE_SPEC)
    spec.update(overrides)
    return spec


def codes(report) -> set:
    return {f.code for f in report.errors}


class TestRejectionClasses:
    def test_negative_depth_grid(self):
        report = validate_scenario(
            spec_with(bathymetry={"type": "flat", "depth": -10.0})
        )
        assert not report.ok
        assert "bathymetry.no_water" in codes(report)

    def test_non_3_to_1_nesting(self):
        grid = {
            "ratio": 3,
            "levels": [
                {"index": 1, "dx": 300.0, "blocks": [[0, 1, 0, 0, 12, 12]]},
                {"index": 2, "dx": 150.0, "blocks": [[1, 2, 6, 6, 12, 12]]},
            ],
        }
        report = validate_scenario(spec_with(grid=grid))
        assert not report.ok
        assert "grid.nesting" in codes(report)

    def test_cfl_violating_dt(self):
        report = validate_scenario(
            spec_with(bathymetry={"type": "flat", "depth": 4_000.0}, dt=2.0)
        )
        assert not report.ok
        assert "cfl.dt_too_large" in codes(report)
        finding = next(f for f in report.errors if f.code == "cfl.dt_too_large")
        assert "dt" in finding.suggestion  # suggests a concrete fix

    def test_out_of_bounds_fault(self):
        report = validate_scenario(
            spec_with(
                source={
                    "type": "gaussian",
                    "x0": -99_999.0,
                    "y0": 1_800.0,
                    "amplitude": 1.0,
                    "sigma": 600.0,
                }
            )
        )
        assert not report.ok
        assert "source.out_of_bounds" in codes(report)

    def test_overlapping_blocks(self):
        grid = {
            "ratio": 3,
            "levels": [
                {
                    "index": 1,
                    "dx": 300.0,
                    "blocks": [[0, 1, 0, 0, 12, 12], [2, 1, 6, 6, 12, 12]],
                }
            ],
        }
        report = validate_scenario(spec_with(grid=grid))
        assert not report.ok
        assert "grid.overlapping_blocks" in codes(report)

    def test_schema_version_mismatch(self, tmp_path):
        rundir = tmp_path / "run"
        start_run(rundir, BASE_SPEC, checkpoint_every=5)
        store = RunStore(rundir, create=False)
        mpath = store.snapshot_paths()[-1] / "manifest.json"
        manifest = json.loads(mpath.read_text())
        manifest["schema_version"] = 99
        mpath.write_text(json.dumps(manifest))
        report = validate_rundir(rundir)
        assert not report.ok
        assert "persist.schema_version" in codes(report)


class TestMultiErrorReporting:
    def test_all_problems_collected_at_once(self):
        spec = spec_with(
            bathymetry={"type": "flat", "depth": -10.0},
            source={
                "type": "gaussian",
                "x0": -99_999.0,
                "y0": 1_800.0,
                "amplitude": 1.0,
                "sigma": 600.0,
            },
        )
        report = validate_scenario(spec)
        assert {"bathymetry.no_water", "source.out_of_bounds"} <= codes(report)

    def test_findings_are_actionable(self):
        report = validate_scenario(
            spec_with(bathymetry={"type": "flat", "depth": -10.0})
        )
        for finding in report.errors:
            assert finding.field
            assert finding.constraint
            assert finding.suggestion
            rendered = str(finding)
            assert "[ERROR]" in rendered and "fix:" in rendered

    def test_raise_if_failed_carries_findings(self):
        report = validate_scenario(
            spec_with(bathymetry={"type": "flat", "depth": -10.0})
        )
        with pytest.raises(ValidationError) as exc_info:
            report.raise_if_failed()
        findings = exc_info.value.findings
        assert findings and all(isinstance(f, Finding) for f in findings)

    def test_clean_spec_passes(self):
        report = validate_scenario(BASE_SPEC)
        assert report.ok
        assert report.errors == []


class TestStartRunGate:
    def test_start_run_refuses_invalid_scenario(self, tmp_path):
        bad = spec_with(bathymetry={"type": "flat", "depth": -10.0})
        with pytest.raises(ValidationError):
            start_run(tmp_path / "run", bad)

    def test_skip_preflight_bypasses_gate(self, tmp_path):
        # malformed-but-runnable spec must still build when forced
        spec = spec_with(n_steps=1)
        start_run(tmp_path / "run", spec, skip_preflight=True)


class TestValidateCli:
    def test_shipped_kochi_example_passes(self, capsys):
        assert main(["validate", str(EXAMPLE)]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_bad_scenario_file_exits_1(self, tmp_path, capsys):
        bad = spec_with(bathymetry={"type": "flat", "depth": -10.0})
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        assert main(["validate", str(path)]) == 1
        out = capsys.readouterr().out
        assert "bathymetry" in out and "fix:" in out

    def test_unreadable_target_exits_2(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope.json")]) == 2

    def test_validate_rundir(self, tmp_path, capsys):
        rundir = tmp_path / "run"
        start_run(rundir, BASE_SPEC, checkpoint_every=5)
        assert main(["validate", str(rundir)]) == 0

    def test_directory_without_run_exits_2(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path)]) == 2
