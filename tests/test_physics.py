"""Tests for in-situ physics observability (repro.obs.physics).

Covers the satellite guarantees (non-mutating residuals, gauge arrival
times and resume survival, monitor composition) and the tentpole
properties: sampling is bitwise non-invasive and under the 5 % overhead
budget, the divergence sentinel catches a seeded blow-up many steps
before the health monitor's NaN wall, a diverging resilient forecast
aborts early and still completes via rollback, the soak harness scores
physics verdicts into the ``validity`` SLO, and the artifacts
(``physics.json``, Chrome counter tracks, ``repro inspect --physics``)
round-trip.
"""

import json
import math
import time
import timeit

import numpy as np
import pytest

import repro.obs as obs
from repro.cli import main
from repro.core import CompositeMonitor, GaugeRecorder, SimulationConfig
from repro.errors import ConfigurationError, NumericalError, PersistError
from repro.fault import GaussianSource
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.obs.export import physics_counter_events, validate_chrome_trace
from repro.obs.inspect import inspect_physics
from repro.obs.physics import (
    DIVERGED,
    HEALTHY,
    PHYSICS_NAME,
    SUSPECT,
    DivergenceSentinel,
    PhysicsDivergenceError,
    PhysicsSampler,
    RobustScore,
    load_physics_report,
    physics_doc,
    render_physics_doc,
    write_physics_json,
)
from repro.obs.slo import DEFAULT_SLOS, SLOEngine, render_slo_doc
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    HealthMonitor,
    run_resilient_forecast,
)
from repro.service.soak import SoakConfig, run_soak
from repro.validation import (
    FlatBathymetry,
    lake_at_rest_residual,
    mass_residual,
    single_block_model,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def basin_model(n=40, depth=50.0, amplitude=1.0):
    """Closed flat basin with a centered Gaussian hump (deterministic)."""
    model = single_block_model(
        n, n, 100.0, FlatBathymetry(depth), boundary="wall"
    )
    model.set_initial_condition(
        GaussianSource(
            x0=n * 50.0, y0=n * 50.0, amplitude=amplitude, sigma=600.0
        )
    )
    return model


def nested_grid():
    return NestedGrid(
        [
            GridLevel(index=1, dx=300.0, blocks=[Block(0, 1, 0, 0, 30, 30)]),
            GridLevel(
                index=2, dx=100.0, blocks=[Block(1, 2, 30, 30, 30, 30)]
            ),
        ]
    )


def source():
    return GaussianSource(x0=4500.0, y0=4500.0, amplitude=1.0, sigma=1500.0)


# ---------------------------------------------------------------------------
# Non-mutating residuals (satellite 1)
# ---------------------------------------------------------------------------


class TestResiduals:
    def test_mass_residual_does_not_mutate(self):
        model = basin_model()
        model.run(10)
        before = model.step_count
        arrays = [st.z_old.copy() for st in model.states.values()]
        v0 = model.total_volume()
        model.run(5)
        drift = mass_residual(model, v0)
        dev = lake_at_rest_residual(model)
        assert model.step_count == before + 5  # residuals ran 0 steps
        assert math.isfinite(drift) and math.isfinite(dev)
        model2 = basin_model()
        model2.run(10)
        for st, z in zip(model2.states.values(), arrays):
            assert np.array_equal(st.z_old, z)

    def test_dry_baseline_returns_zero(self):
        model = single_block_model(
            10, 10, 100.0, FlatBathymetry(-5.0), boundary="wall"
        )
        assert mass_residual(model, 0.0) == 0.0


# ---------------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------------


class TestPhysicsSampler:
    def test_cadence(self):
        model = basin_model()
        sampler = PhysicsSampler(every=5)
        model.run(30, monitor=sampler)
        assert sampler.samples_taken == 6
        assert [s.step for s in sampler.samples] == [5, 10, 15, 20, 25, 30]

    def test_all_dry_grid_is_finite_and_healthy(self):
        # A grid that is land everywhere: no wet cells, zero volume.
        # Every diagnostic must stay finite (no division by the empty
        # wet set) and the verdict must be healthy.
        model = single_block_model(
            20, 20, 100.0, FlatBathymetry(-10.0), boundary="wall"
        )
        sentinel = DivergenceSentinel(PhysicsSampler(every=1))
        model.run(5, monitor=sentinel)
        assert len(sentinel.sampler.samples) == 5
        for smp in sentinel.sampler.samples:
            assert smp.finite
            assert smp.wet_cells == 0
            assert smp.cfl_margin == 1.0
            assert smp.mass_drift == 0.0
            assert smp.verdict == HEALTHY
        assert sentinel.worst == HEALTHY

    def test_clean_run_is_healthy_no_false_aborts(self):
        model = basin_model()
        rec = GaugeRecorder(
            model, [("mid", 2000.0, 2000.0), ("edge", 300.0, 2000.0)]
        )
        sentinel = DivergenceSentinel(PhysicsSampler(every=2, recorder=rec))
        model.run(60, monitor=[rec, sentinel])
        assert sentinel.worst == HEALTHY
        assert sentinel.aborts == 0
        assert sentinel.events == []
        assert all(s.finite for s in sentinel.sampler.samples)

    def test_reset_baseline_reseeds(self):
        model = basin_model()
        sampler = PhysicsSampler(every=1)
        model.run(5, monitor=sampler)
        sampler.reset_baseline()
        assert sampler._v0 is None
        smp = sampler.sample(model)
        assert smp.mass_drift == 0.0  # volume re-baselined to "now"

    def test_bad_cadence_rejected(self):
        with pytest.raises(ConfigurationError):
            PhysicsSampler(every=0)


class TestRobustScore:
    def test_flat_series_never_divides_by_zero(self):
        sc = RobustScore(warmup=3)
        scores = [sc.score(0.0) for _ in range(50)]
        assert all(math.isfinite(s) and s == 0.0 for s in scores)

    def test_outlier_scores_high_without_vouching_for_itself(self):
        sc = RobustScore(warmup=4)
        for x in [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02]:
            sc.score(x)
        assert sc.score(50.0) > 8.0

    def test_nonfinite_scores_inf(self):
        sc = RobustScore()
        assert sc.score(float("nan")) == math.inf


# ---------------------------------------------------------------------------
# Bitwise identity: sampling on vs off (tentpole guarantee)
# ---------------------------------------------------------------------------


class TestBitwiseIdentity:
    def test_sampling_does_not_perturb_the_run(self):
        bare = basin_model()
        bare.run(40)

        watched = basin_model()
        rec = GaugeRecorder(watched, [("mid", 2000.0, 2000.0)])
        sentinel = DivergenceSentinel(
            PhysicsSampler(every=1, recorder=rec)
        )
        watched.run(40, monitor=[rec, sentinel])

        assert sentinel.sampler.samples_taken == 40
        for a, b in zip(bare.states.values(), watched.states.values()):
            assert np.array_equal(a.z_old, b.z_old)
            assert np.array_equal(a.m_old, b.m_old)
            assert np.array_equal(a.n_old, b.n_old)


# ---------------------------------------------------------------------------
# Overhead guard (tier-1, <5 %)
# ---------------------------------------------------------------------------


class TestOverheadGuard:
    def test_sampling_overhead_under_5_percent(self):
        """Per-sample cost x samples-per-run stays under 5 % of the run.

        Same stable methodology as the tracer's overhead guard
        (``test_obs.py``): measure the isolated per-call cost and scale
        by the cadence, rather than an A/B wall-clock diff.
        """
        n_steps = 50
        model = basin_model(n=60)
        t0 = time.perf_counter()
        model.run(n_steps)
        run_s = time.perf_counter() - t0

        sampler = PhysicsSampler(every=5)
        n_calls = 200
        per_call_s = (
            timeit.timeit(lambda: sampler.sample(model), number=n_calls)
            / n_calls
        )
        overhead = per_call_s * (n_steps / sampler.every) / run_s
        assert overhead < 0.05, (
            f"physics sampling costs {overhead:.2%} of a {n_steps}-step "
            f"run ({per_call_s * 1e6:.0f} us/sample at cadence "
            f"{sampler.every})"
        )


# ---------------------------------------------------------------------------
# Divergence sentinel
# ---------------------------------------------------------------------------


class _Corruptor:
    """Test monitor: one-shot finite corruption of the published eta."""

    def __init__(self, step: int, value: float):
        self.step = step
        self.value = value

    def after_step(self, model) -> None:
        if model.step_count == self.step:
            st = next(iter(model.states.values()))
            st.z_old[st.z_old.shape[0] // 2, st.z_old.shape[1] // 2] = (
                self.value
            )


class _Destabilizer:
    """Test monitor: compound flux corruption, the slow road to NaN.

    Multiplies the published fluxes by *factor* every step from *step*
    on — the donor-cell scheme is dissipative enough that a one-shot
    spike decays, so reaching the non-finite wall needs sustained
    amplification (flux overflows to inf after ~log_factor(1e308)
    steps)."""

    def __init__(self, step: int, factor: float):
        self.step = step
        self.factor = factor

    def after_step(self, model) -> None:
        if model.step_count >= self.step:
            for st in model.states.values():
                st.m_old[:] *= self.factor
                st.n_old[:] *= self.factor


class TestDivergenceSentinel:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_sentinel_fires_many_steps_before_nan_wall(self):
        """Seeded blow-up: sentinel >= 10 steps earlier than NaN scan.

        Fluxes doubling every step from step 20 stay finite for
        hundreds of steps (doubles reach inf only past 2^1024), so a
        health monitor stripped down to its non-finite scan (eta/CFL
        limits at inf) aborts around step ~400.  The sentinel's growth
        and eta-limit rules fire within a handful of samples.
        """

        def corrupted_run(watcher):
            model = basin_model()
            try:
                model.run(
                    800, monitor=[_Destabilizer(20, 2.0), watcher]
                )
            except NumericalError:
                return model.step_count
            pytest.fail("corrupted run was never aborted")

        sentinel_step = corrupted_run(
            DivergenceSentinel(PhysicsSampler(every=1))
        )
        health_step = corrupted_run(
            HealthMonitor(
                every=1, eta_limit=math.inf, cfl_limit=math.inf
            )
        )
        assert sentinel_step <= 30  # a few samples past the onset
        assert health_step - sentinel_step >= 10

    def test_abort_raises_numerical_error_subclass(self):
        model = basin_model()
        sentinel = DivergenceSentinel(PhysicsSampler(every=1))
        with pytest.raises(PhysicsDivergenceError) as err:
            model.run(40, monitor=[_Corruptor(10, 1.0e6), sentinel])
        assert isinstance(err.value, NumericalError)
        assert sentinel.worst == DIVERGED
        assert sentinel.aborts == 1
        assert sentinel.events and sentinel.events[-1]["verdict"] == DIVERGED

    def test_no_abort_mode_records_but_continues(self):
        model = basin_model()
        sentinel = DivergenceSentinel(PhysicsSampler(every=1), abort=False)
        model.run(30, monitor=[_Corruptor(10, 50.0), sentinel])
        assert model.step_count == 30
        assert sentinel.aborts == 0
        assert sentinel.worst in (SUSPECT, DIVERGED)
        assert sentinel.events

    def test_patience_escalates_persistent_suspect(self):
        sampler = PhysicsSampler(every=1)
        sentinel = DivergenceSentinel(
            sampler, cfl_margin_floor=0.9, patience=3, abort=False
        )
        model = basin_model()  # margin ~0.5 < 0.9 floor: always suspect
        model.run(5, monitor=sentinel)
        assert sentinel.worst == DIVERGED
        verdicts = [s.verdict for s in sampler.samples]
        assert verdicts[:3] == [SUSPECT, SUSPECT, DIVERGED]

    def test_reset_baseline_clears_evidence_keeps_history(self):
        sampler = PhysicsSampler(every=1)
        sentinel = DivergenceSentinel(sampler, abort=False)
        model = basin_model()
        model.run(12, monitor=[_Corruptor(5, 50.0), sentinel])
        worst, events = sentinel.worst, list(sentinel.events)
        assert events
        sentinel.reset_baseline()
        assert sentinel.verdict == HEALTHY
        assert sampler.samples == []
        assert sentinel.worst == worst  # reporting history preserved
        assert sentinel.events == events

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DivergenceSentinel(window=1)
        with pytest.raises(ConfigurationError):
            DivergenceSentinel(patience=0)


# ---------------------------------------------------------------------------
# Monitor composition (satellite 3)
# ---------------------------------------------------------------------------


class TestCompositeMonitor:
    def test_list_of_monitors_runs_all_in_order(self):
        calls = []

        class Probe:
            def __init__(self, tag):
                self.tag = tag

            def after_step(self, model):
                calls.append((self.tag, model.step_count))

        model = basin_model(n=10)
        model.run(2, monitor=[Probe("a"), Probe("b")])
        assert calls == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_rejects_non_monitor(self):
        with pytest.raises(ConfigurationError):
            CompositeMonitor([object()])

    def test_reset_baseline_propagates(self):
        health = HealthMonitor(mass_tol=0.05)
        sentinel = DivergenceSentinel()
        composite = CompositeMonitor([health, sentinel])
        model = basin_model(n=10)
        model.run(3, monitor=composite)
        sentinel.sampler._v0 = 123.0
        health._v0 = 123.0
        composite.reset_baseline()
        assert health._v0 is None
        assert sentinel.sampler._v0 is None
        assert len(composite) == 2


# ---------------------------------------------------------------------------
# Gauges: arrival times + resume survival (satellite 2)
# ---------------------------------------------------------------------------


class TestGaugeArrival:
    def test_arrival_time_and_summary(self):
        model = basin_model(amplitude=1.0)
        rec = GaugeRecorder(
            model, [("near", 2000.0, 2000.0), ("far", 200.0, 200.0)]
        )
        model.run(40, monitor=rec)
        near, far = rec.gauges
        # Born inside the hump: arrives at the first recorded sample.
        assert near.arrival_time(0.05) == near.times[0]
        t_far = far.arrival_time(0.05)
        assert math.isfinite(t_far) and t_far > 0.0
        assert far.arrival_time(1e9) == float("inf")
        assert "arrival" in rec.summary()

    def test_empty_series_is_inf_not_nan(self):
        model = basin_model(n=10)
        rec = GaugeRecorder(model, [("g", 500.0, 500.0)])
        assert math.isinf(rec.gauges[0].arrival_time())
        assert "—" in rec.summary()

    def test_restore_round_trip(self):
        model = basin_model(n=10)
        rec = GaugeRecorder(model, [("a", 300.0, 300.0), ("b", 700.0, 700.0)])
        rec.restore([0.0, 1.0, 2.0], [[0.0, 0.0], [0.02, 0.0], [0.5, 0.1]])
        a, b = rec.gauges
        assert a.arrival_time(0.01) == 1.0
        assert b.arrival_time(0.01) == 2.0
        with pytest.raises(ConfigurationError):
            rec.restore([0.0], [[1.0]])  # row width != station count

    def test_recorder_survives_rundir_resume(self, tmp_path):
        from repro.persist.products import ProductStreamer
        from repro.persist.store import RunStore

        model = basin_model(n=10)
        store = RunStore(tmp_path / "run")
        streamer = ProductStreamer(
            store, model, stations=[("a", 300.0, 300.0)]
        )
        model.run(6, monitor=streamer)
        full = streamer.recorder.gauges[0]

        # A fresh process resumes from a step-4 snapshot: in-memory
        # gauge history is gone until the streamer reloads it from
        # gauges.csv, so arrival times span the whole run.
        model2 = basin_model(n=10)
        model2.run(4)
        streamer2 = ProductStreamer(
            store, model2, stations=[("a", 300.0, 300.0)]
        )
        streamer2.sync_resume_point(model2)
        g = streamer2.recorder.gauges[0]
        assert len(g.times) == 4
        # CSV stores %.6f / %.9e — compare at stored precision.
        assert g.times == pytest.approx(full.times[:4], abs=1e-6)
        assert g.eta == pytest.approx(full.eta[:4], rel=1e-8)


# ---------------------------------------------------------------------------
# Validity SLO (zero traffic is undefined, not burning)
# ---------------------------------------------------------------------------


class TestValiditySLO:
    def test_validity_in_default_slos(self):
        assert any(s.name == "validity" for s in DEFAULT_SLOS)
        engine = SLOEngine()
        assert engine.knows("validity")
        assert not engine.knows("no-such-slo")

    def test_zero_traffic_burn_undefined_not_burning(self):
        engine = SLOEngine()
        # Traffic on other objectives, none carrying verdicts.
        for k in range(20):
            engine.record("availability", 60.0 * k, True)
        report = engine.evaluate(3600.0)
        validity = next(
            s for s in report.statuses if s.name == "validity"
        )
        assert validity.total == 0
        assert validity.attainment == 1.0
        assert validity.burn_rates == {}  # undefined, not infinite
        assert not validity.exhausted
        assert engine.burn_rate("validity", 3600.0, 300.0) is None
        lines, ok = render_slo_doc(report.to_dict())
        assert ok

    def test_unhealthy_verdicts_burn_the_budget(self):
        engine = SLOEngine()
        for k in range(100):
            engine.record("validity", float(k), k % 10 != 0)  # 90 % good
        validity = next(
            s
            for s in engine.evaluate(100.0).statuses
            if s.name == "validity"
        )
        assert validity.total == 100
        assert validity.attainment == pytest.approx(0.9)
        assert validity.exhausted  # 10 % bad >> 5 % budget


# ---------------------------------------------------------------------------
# Resilient forecast integration: abort early, recover, report
# ---------------------------------------------------------------------------


class TestForecastIntegration:
    def test_clean_forecast_is_healthy(self):
        report = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=60.0, physics_every=2,
        )
        assert report.complete
        assert report.physics_verdict == HEALTHY
        assert report.physics["aborts"] == 0
        assert report.physics["events"] == []
        assert "physics" in report.summary()

    def test_seeded_divergence_aborts_and_recovers(self):
        # A finite 60 m spike slips under the health monitor's 100 m
        # eta limit; only the sentinel's growth rule sees it.  The
        # sentinel abort must feed the existing rollback machinery and
        # the run must still complete.
        plan = FaultPlan(
            [FaultSpec(kind="nan", step=30, block=0, field="z", value=60.0)]
        )
        report = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=60.0, fault_plan=plan,
            physics_every=1,
        )
        assert report.complete
        assert report.rollbacks >= 1
        assert report.physics_verdict == DIVERGED
        assert report.physics["aborts"] >= 1
        assert any(
            ev["verdict"] == DIVERGED for ev in report.physics["events"]
        )

    def test_physics_json_written_to_rundir(self, tmp_path):
        from repro.persist.store import RunStore

        store = RunStore(tmp_path / "run")
        report = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=40.0, physics_every=2,
            store=store,
        )
        assert report.complete
        doc = load_physics_report(store.rundir / PHYSICS_NAME)
        assert doc["verdict"] == HEALTHY
        assert doc["samples"]
        text, ok = inspect_physics(store.rundir)
        assert ok and "physics verdict: healthy" in text


# ---------------------------------------------------------------------------
# Soak: simulated divergence, validity scoring, early abort
# ---------------------------------------------------------------------------


class TestSoakDivergence:
    def test_divergence_soak_scores_validity_and_aborts_early(self, tmp_path):
        rundir = tmp_path / "soak"
        report = run_soak(
            SoakConfig(
                duration_s=1200.0, seed=11, diverge_fraction=0.3
            ),
            rundir=rundir,
        )
        counts = report.physics_verdicts
        assert counts.get(DIVERGED, 0) > 0
        assert counts.get(HEALTHY, 0) > 0
        assert "physics verdicts" in report.summary()

        doc = load_physics_report(rundir / PHYSICS_NAME)
        assert doc["verdict"] == DIVERGED
        assert doc["counts"] == counts
        diverged = [
            r for r in doc["requests"] if r["verdict"] == DIVERGED
        ]
        assert diverged
        for r in diverged:
            # The simulated sentinel aborts before half the deadline
            # budget is spent (acceptance criterion).
            assert r["cost_s"] < 0.5 * r["deadline_s"]

        # Diverged completions burn the validity budget.
        validity = next(
            s for s in report.slo["slos"] if s["name"] == "validity"
        )
        assert validity["total"] == sum(counts.values())
        assert validity["bad"] == counts.get(DIVERGED, 0)

    def test_clean_soak_validity_untouched_by_divergence(self):
        report = run_soak(
            SoakConfig(duration_s=600.0, seed=3, diverge_fraction=0.0)
        )
        assert set(report.physics_verdicts) <= {HEALTHY}
        validity = next(
            s for s in report.slo["slos"] if s["name"] == "validity"
        )
        assert validity["bad"] == 0


# ---------------------------------------------------------------------------
# Artifacts: physics.json, Chrome counters, metrics, CLI
# ---------------------------------------------------------------------------


class TestArtifacts:
    def _sentinel_after_run(self, corrupt=False):
        model = basin_model()
        sentinel = DivergenceSentinel(PhysicsSampler(every=2), abort=False)
        monitors = [sentinel]
        if corrupt:
            monitors.insert(0, _Corruptor(10, 50.0))
        model.run(30, monitor=monitors)
        return sentinel

    def test_physics_json_round_trip(self, tmp_path):
        sentinel = self._sentinel_after_run(corrupt=True)
        path = write_physics_json(
            tmp_path / PHYSICS_NAME, physics_doc(sentinel=sentinel)
        )
        doc = load_physics_report(path)
        assert doc["schema"] == "repro.obs.physics/1"
        assert doc["verdict"] == sentinel.worst
        assert len(doc["samples"]) == len(sentinel.sampler.samples)
        assert doc["events"] == sentinel.events
        lines, ok = render_physics_doc(doc)
        text = "\n".join(lines)
        assert "sentinel events" in text
        assert ok == (sentinel.worst != DIVERGED)

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / PHYSICS_NAME
        p.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(PersistError):
            load_physics_report(p)

    def test_chrome_counter_tracks_validate(self):
        sentinel = self._sentinel_after_run()
        events = physics_counter_events(sentinel.sampler.samples)
        counters = [e for e in events if e.get("ph") == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "physics:mass_drift" in names
        assert "physics:cfl_margin" in names
        doc = {"traceEvents": events, "displayTimeUnit": "ms"}
        validate_chrome_trace(doc)  # raises on malformed events

    def test_counter_tracks_merge_into_trace_export(self, tmp_path):
        from repro.obs.export import chrome_trace

        obs.enable()
        model = basin_model(n=10)
        sentinel = DivergenceSentinel(PhysicsSampler(every=1))
        model.run(4, monitor=sentinel)
        doc = chrome_trace(physics_samples=sentinel.sampler.samples)
        validate_chrome_trace(doc)
        assert any(
            e.get("ph") == "C" for e in doc["traceEvents"]
        )

    def test_metrics_exported_when_armed(self):
        obs.enable()
        model = basin_model(n=10)
        sentinel = DivergenceSentinel(PhysicsSampler(every=1))
        model.run(6, monitor=sentinel)
        snap = obs.get_registry().to_dict()
        assert snap["counters"]["repro_physics_samples_total"] == 6
        assert "repro_physics_cfl_margin" in snap["gauges"]
        assert snap["gauges"]["repro_physics_verdict"] == 0

    def test_cli_inspect_physics(self, tmp_path, capsys):
        write_physics_json(
            tmp_path / PHYSICS_NAME,
            physics_doc(sampler=PhysicsSampler(), verdict=HEALTHY),
        )
        assert main(["inspect", str(tmp_path), "--physics"]) == 0
        assert "physics verdict: healthy" in capsys.readouterr().out

    def test_cli_inspect_physics_gates_on_divergence(self, tmp_path, capsys):
        write_physics_json(
            tmp_path / PHYSICS_NAME,
            physics_doc(verdict=DIVERGED, counts={DIVERGED: 2}),
        )
        assert main(["inspect", str(tmp_path), "--physics"]) == 7
        capsys.readouterr()

    def test_cli_inspect_physics_missing_is_structured(
        self, tmp_path, capsys
    ):
        assert main(["inspect", str(tmp_path), "--physics"]) == 6
        assert "no-physics" in capsys.readouterr().out
