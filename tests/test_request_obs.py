"""Tests for request-scoped observability.

Covers trace-context propagation (span trees keyed by request id,
cross-thread inheritance into rank workers), the per-request flight
recorder (bounded rings, bad-ending dumps, the ``inspect --request``
view), the SLO engine (attainment, error budgets, multi-window
burn-rate alerts, the ``repro slo`` gate), the service's bounded event
ring, Chrome-trace service instants, and the soak run-directory
artifacts tying them all together.
"""

from __future__ import annotations

import contextlib
import json

import pytest

import repro.obs as obs
from repro import cli
from repro.errors import PersistError, ServiceOverloadError
from repro.obs import trace as obstrace
from repro.obs.export import (
    service_events_to_chrome,
    validate_chrome_trace,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightBook,
    FlightRecorder,
    flight_path,
    load_flight,
    render_flight,
)
from repro.obs.inspect import inspect_request
from repro.obs.metrics import MetricsRegistry, get_registry, parse_prometheus
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SLOEngine,
    BurnWindow,
    load_slo_report,
    render_slo_doc,
)
from repro.obs.trace import TraceContext
from repro.service import (
    EventRing,
    ForecastRequest,
    ForecastService,
    ServiceConfig,
    SimulatedBackend,
    SoakConfig,
    run_soak,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with the telemetry layer dark."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def scenario(tag="s", n_levels=2, base=200_000, n_steps=3600):
    return {
        "grid": f"test-{tag}",
        "cells_by_level": [[base * (lv + 1)] for lv in range(n_levels)],
        "n_steps": n_steps,
        "dt": 1.0,
        "source": {"type": "gaussian", "amplitude": 1.0},
    }


def make_service(backend=None, **cfg):
    cfg.setdefault("workers", 1)
    cfg.setdefault("queue_capacity", 8)
    slo = cfg.pop("slo", None)
    flight_dir = cfg.pop("flight_dir", None)
    backend = backend or SimulatedBackend(noise=0.0)
    service = ForecastService(
        backend,
        ServiceConfig(**cfg),
        estimator=getattr(backend, "estimator", None),
        slo=slo,
        flight_dir=flight_dir,
    )
    return service, backend


# -- trace-context propagation -------------------------------------------


class TestTraceContext:
    def test_nested_spans_form_one_tree_under_bound_context(self):
        obs.enable()
        tracer = obstrace.get_tracer()
        with tracer.context(TraceContext("req-7")):
            with obstrace.span("request", cat="service"):
                with obstrace.span("backend.run", cat="service"):
                    pass
        spans = {s["name"]: s for s in tracer.export()}
        root, child = spans["request"], spans["backend.run"]
        assert root["trace_id"] == child["trace_id"] == "req-7"
        assert child["parent_id"] == root["span_id"]
        assert "parent_id" not in root

    def test_unbound_spans_carry_no_trace_keys(self):
        obs.enable()
        with obstrace.span("loose"):
            pass
        (d,) = obstrace.get_tracer().export()
        assert "trace_id" not in d and "span_id" not in d

    def test_current_context_points_at_innermost_open_span(self):
        obs.enable()
        tracer = obstrace.get_tracer()
        with tracer.context(TraceContext("req-1")):
            with obstrace.span("request") as s:
                ctx = tracer.current_context()
                assert ctx.trace_id == "req-1"
                assert ctx.parent_span_id == s.span_id
        assert tracer.current_context() is None

    def test_disabled_tracer_records_nothing(self):
        tracer = obstrace.get_tracer()
        assert not tracer.enabled
        with tracer.context(TraceContext("req-1")):
            with obstrace.span("request"):
                pass
        assert tracer.export() == []

    def test_rank_threads_inherit_spawning_trace(self):
        from repro.par.comm import run_ranks

        obs.enable()
        tracer = obstrace.get_tracer()
        seen = {}

        def fn(comm):
            ctx = tracer.current_context()
            seen[comm.rank] = None if ctx is None else ctx.trace_id
            with obstrace.span("rank_work", rank=comm.rank):
                pass
            return comm.rank

        with tracer.context(TraceContext("req-42")):
            with obstrace.span("request"):
                run_ranks(2, fn, timeout=30.0)
        assert seen == {0: "req-42", 1: "req-42"}
        rank_spans = [
            s for s in tracer.export() if s["name"] == "rank_work"
        ]
        assert len(rank_spans) == 2
        assert all(s["trace_id"] == "req-42" for s in rank_spans)


# -- flight recorder ------------------------------------------------------


class TestFlightRecorder:
    def test_ring_bounds_and_counts_drops(self):
        rec = FlightRecorder("req-1", capacity=3)
        for i in range(5):
            rec.record("tick", f"n={i}", t_service=float(i))
        assert len(rec) == 3
        assert rec.dropped == 2
        kinds = [ev["detail"] for ev in rec.events()]
        assert kinds == ["n=2", "n=3", "n=4"]  # oldest fell off

    def test_book_settled_ring_is_bounded(self):
        book = FlightBook(capacity=4, keep=2)
        for i in range(4):
            book.open(f"req-{i}").record("admit")
            book.settle(f"req-{i}", outcome="done")
        assert book.stats()["settled"] == 2
        assert book.get("req-0") is None  # aged out
        assert book.get("req-3") is not None

    def test_note_unknown_or_settled_id_is_ignored(self):
        book = FlightBook(capacity=4, keep=2)
        book.note("ghost", "admit")  # no recorder, no error
        book.open("req-1")
        book.settle("req-1", outcome="done")
        book.note("req-1", "late")  # settled: also ignored
        assert len(book.get("req-1")) == 0

    def test_dump_render_inspect_round_trip(self, tmp_path):
        book = FlightBook(capacity=8, out_dir=tmp_path / "flight")
        book.open("req-9", tenant="t0", klass="low")
        book.note("req-9", "admit", "fidelity=full", t_service=1.5)
        book.note("req-9", "shed", "displaced by req-10",
                  t_service=2.5, stage="relieve")
        path = book.settle(
            "req-9", outcome="shed: displaced by req-10", dump=True
        )
        assert path == flight_path(tmp_path, "req-9")
        doc = load_flight(path)
        assert doc["schema"] == FLIGHT_SCHEMA
        text = render_flight(doc)
        assert "outcome         : shed: displaced by req-10" in text
        assert "stage=relieve" in text
        # The CLI entry point renders the same timeline.
        assert inspect_request(tmp_path, "req-9") == text

    def test_inspect_unknown_request_lists_recorded_ids(self, tmp_path):
        book = FlightBook(capacity=8, out_dir=tmp_path / "flight")
        book.open("req-1")
        book.settle("req-1", outcome="failed", dump=True)
        with pytest.raises(PersistError, match="req-1"):
            inspect_request(tmp_path, "req-404")

    def test_inspect_empty_rundir_explains(self, tmp_path):
        with pytest.raises(PersistError, match="no flight recordings"):
            inspect_request(tmp_path, "req-1")


# -- SLO engine -----------------------------------------------------------


class TestSLOEngine:
    def test_attainment_and_budget_math(self):
        eng = SLOEngine(slos=(SLO("avail", "d", 0.90),))
        for i in range(19):
            eng.record("avail", float(i), True)
        eng.record("avail", 19.0, False)
        (s,) = eng.evaluate(20.0).statuses
        # 1 bad of 20 at a 10% budget: half the budget burned.
        assert s.attainment == pytest.approx(0.95)
        assert s.budget_consumed == pytest.approx(0.5)
        assert s.budget_remaining == pytest.approx(0.5)
        assert not s.exhausted

    def test_exhaustion_fails_the_rendered_gate(self):
        eng = SLOEngine(slos=(SLO("avail", "d", 0.90),))
        for i in range(10):
            eng.record("avail", float(i), i < 5)  # 50% bad >> 10% budget
        report = eng.evaluate(10.0)
        assert report.exhausted
        lines, ok = render_slo_doc(report.to_dict())
        assert not ok
        assert any("BUDGET EXHAUSTED" in ln for ln in lines)

    def test_no_traffic_burn_is_undefined_not_alerting(self):
        eng = SLOEngine(slos=(SLO("avail", "d", 0.99),))
        assert eng.burn_rate("avail", 1000.0, 300.0) is None
        (s,) = eng.evaluate(1000.0).statuses
        assert s.burn_rates == {} and s.alerts == []

    def test_alert_requires_both_windows_burning(self):
        w = BurnWindow("fast", short_s=10.0, long_s=100.0, factor=2.0)
        eng = SLOEngine(slos=(SLO("avail", "d", 0.90),), windows=(w,))
        # Long window: mostly good traffic; short window: a pure burst
        # of failures.  Short burns hard, long stays under factor.
        for i in range(90):
            eng.record("avail", float(i), True)
        for i in range(5):
            eng.record("avail", 95.0 + i, False)
        (s,) = eng.evaluate(100.0).statuses
        assert s.burn_rates["fast_10s"] > 2.0
        assert s.burn_rates["fast_100s"] < 2.0
        assert s.alerts == []  # one window alone never pages
        # Saturate the long window too -> the alert fires.
        for i in range(40):
            eng.record("avail", 100.0 + i, False)
        (s,) = eng.evaluate(140.0).statuses
        assert s.alerts == ["fast"]

    def test_gauges_exported_per_slo_and_window(self):
        eng = SLOEngine(
            slos=(SLO("avail", "d", 0.90),),
            windows=(BurnWindow("fast", 10.0, 100.0, 2.0),),
        )
        eng.record("avail", 1.0, True)
        eng.record("avail", 2.0, False)
        reg = MetricsRegistry()
        eng.export_gauges(5.0, registry=reg)
        samples = parse_prometheus(reg.to_prometheus())
        assert samples['repro_slo_attainment{slo="avail"}'] == 0.5
        assert samples['repro_slo_target{slo="avail"}'] == 0.9
        assert samples[
            'repro_slo_burn_rate{slo="avail",window="fast_10s"}'
        ] == pytest.approx(5.0)
        assert samples['repro_slo_burn_alert{slo="avail"}'] == 1.0

    def test_write_load_render_round_trip(self, tmp_path):
        eng = SLOEngine()
        eng.record("availability", 1.0, True)
        path = eng.write_json(tmp_path / "slo.json", 10.0)
        doc = load_slo_report(path)
        names = [s["name"] for s in doc["slos"]]
        assert names == [s.name for s in DEFAULT_SLOS]
        lines, ok = render_slo_doc(doc)
        assert ok and lines[0].startswith("SLO report at t=10")

    def test_load_rejects_missing_and_foreign_files(self, tmp_path):
        with pytest.raises(PersistError):
            load_slo_report(tmp_path / "nope.json")
        other = tmp_path / "other.json"
        other.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(PersistError, match="not an SLO report"):
            load_slo_report(other)

    def test_unknown_objective_rejected(self):
        eng = SLOEngine()
        with pytest.raises(ValueError, match="unknown SLO"):
            eng.record("durability", 0.0, True)


# -- service integration --------------------------------------------------


class TestServiceRequestObs:
    def test_event_ring_bounded_and_drop_metered(self):
        ring = EventRing(3)
        for i in range(5):
            ring.append(i)
        assert list(ring) == [2, 3, 4]
        assert len(ring) == 3 and ring.dropped == 2
        assert ring[-1] == 4 and ring[0:2] == [2, 3]

        service, _ = make_service(event_buffer=4)
        est = service.estimator.estimate_raw_s(scenario("e"))
        for i in range(3):
            service.submit(ForecastRequest(
                scenario=scenario(f"e{i}"), deadline_s=60 * est
            ))
        service.run_until_idle()
        # admit+dispatch+complete per request overflows a 4-slot ring.
        assert len(service.events) == 4
        assert service.events.dropped > 0
        assert service.stats()["events_dropped"] == service.events.dropped
        samples = parse_prometheus(get_registry().to_prometheus())
        assert samples[
            "repro_service_events_dropped_total"
        ] == service.events.dropped

    def test_shed_request_dumps_flight_with_reason(self, tmp_path):
        service, _ = make_service(
            workers=1, queue_capacity=2, flight_dir=tmp_path / "flight"
        )
        est = service.estimator.estimate_raw_s(scenario("s0"))
        service.submit(ForecastRequest(
            scenario=scenario("s0"), deadline_s=100 * est
        ))
        low = service.submit(ForecastRequest(
            scenario=scenario("s1"), deadline_s=100 * est, klass="low"
        ))
        service.submit(ForecastRequest(
            scenario=scenario("s2"), deadline_s=100 * est, klass="normal"
        ))
        high = service.submit(ForecastRequest(
            scenario=scenario("s3"), deadline_s=100 * est, klass="high"
        ))
        assert low.status == "shed"
        rid = low.request.request_id
        doc = load_flight(flight_path(tmp_path, rid))
        assert "shed" in doc["outcome"]
        assert high.request.request_id in doc["outcome"]  # the displacer
        kinds = [ev["kind"] for ev in doc["events"]]
        assert "admit" in kinds and "shed" in kinds
        text = inspect_request(tmp_path, rid)
        assert "shed" in text and high.request.request_id in text
        service.run_until_idle()

    def test_completion_records_slo_and_exemplar(self):
        eng = SLOEngine()
        service, _ = make_service(slo=eng)
        sc = scenario("ok")
        est = service.estimator.estimate_raw_s(sc)
        ticket = service.submit(
            ForecastRequest(scenario=sc, deadline_s=3 * est)
        )
        service.run_until_idle()
        assert ticket.status == "done"
        assert ticket.trace_id == ticket.request.request_id
        by_name = {
            s.name: s for s in eng.evaluate(service.clock.now()).statuses
        }
        assert by_name["availability"].good == 1
        assert by_name["latency"].good == 1
        # The latency histogram bucket exemplar links back to the trace.
        exemplars: dict = {}
        parse_prometheus(get_registry().to_prometheus(), exemplars)
        hits = [
            ex for name, ex in exemplars.items()
            if name.startswith("repro_service_latency_seconds_bucket")
        ]
        assert any(
            ex["trace_id"] == ticket.request.request_id for ex in hits
        )

    def test_breaker_storm_exhausts_availability_gate(self, tmp_path, capsys):
        eng = SLOEngine()
        backend = SimulatedBackend(
            noise=0.0, fail_when=lambda r: True
        )
        service, _ = make_service(backend=backend, slo=eng, workers=1)
        est = service.estimator.estimate_raw_s(scenario("f"))
        for i in range(4):
            # Once the storm trips the breaker, later arrivals bounce at
            # admission (an explicit 429, not an SLO event).
            with contextlib.suppress(ServiceOverloadError):
                service.submit(ForecastRequest(
                    scenario=scenario(f"f{i}"), deadline_s=60 * est
                ))
            service.run_until_idle()
        failed = [t for t in service.tickets if t.status == "failed"]
        assert failed
        report = eng.evaluate(service.clock.now())
        by_name = {s.name: s for s in report.statuses}
        assert by_name["availability"].exhausted
        assert report.exhausted
        # ...and the CLI gate flips non-zero on the written report.
        eng.write_json(tmp_path / "slo.json", service.clock.now())
        assert cli.main(["slo", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "BUDGET EXHAUSTED" in out

    def test_request_span_tree_emitted_when_traced(self):
        obs.enable()
        service, _ = make_service()
        sc = scenario("tr")
        est = service.estimator.estimate_raw_s(sc)
        ticket = service.submit(
            ForecastRequest(scenario=sc, deadline_s=3 * est)
        )
        service.run_until_idle()
        rid = ticket.request.request_id
        spans = [
            s for s in obstrace.get_tracer().export()
            if s.get("trace_id") == rid
        ]
        names = {s["name"] for s in spans}
        assert {"request", "backend.run"} <= names
        roots = [s for s in spans if "parent_id" not in s]
        assert len(roots) == 1 and roots[0]["name"] == "request"


# -- chrome export of service decisions -----------------------------------


class TestServiceChromeInstants:
    def test_instants_schema_valid_one_track_per_request(self):
        service, _ = make_service(workers=1, queue_capacity=2)
        est = service.estimator.estimate_raw_s(scenario("c0"))
        for i in range(2):
            service.submit(ForecastRequest(
                scenario=scenario(f"c{i}"), deadline_s=100 * est
            ))
        service.run_until_idle()
        events = service_events_to_chrome(list(service.events))
        doc = {"traceEvents": events}
        assert validate_chrome_trace(doc) == []
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and all(e["pid"] == 2 for e in instants)
        assert all(e["s"] == "t" for e in instants)
        threads = [e for e in events if e["name"] == "thread_name"]
        rids = {e["args"]["name"] for e in threads}
        assert rids == {
            t.request.request_id for t in service.tickets
        }
        # Virtual-clock seconds scaled to trace microseconds.
        for e in instants:
            assert e["ts"] == pytest.approx(
                next(
                    ev.t for ev in service.events
                    if ev.kind == e["name"]
                    and ev.request_id == e["args"]["request_id"]
                ) * 1e6
            )


# -- soak artifacts -------------------------------------------------------


class TestSoakArtifacts:
    def test_soak_rundir_has_slo_flight_trace_metrics(self, tmp_path):
        obs.enable()
        report = run_soak(
            SoakConfig(duration_s=600.0, seed=3), rundir=tmp_path
        )
        assert report.ok
        assert report.slo is not None
        assert (tmp_path / "slo.json").exists()
        assert (tmp_path / "metrics.json").exists()
        doc = load_slo_report(tmp_path / "slo.json")
        assert not doc["exhausted"]
        trace_doc = json.loads((tmp_path / "trace.json").read_text())
        assert validate_chrome_trace(trace_doc) == []
        events = trace_doc["traceEvents"]
        # Service decisions ride along as instants on their own pid...
        assert any(e.get("ph") == "i" and e["pid"] == 2 for e in events)
        # ...and every completed request contributed exactly one span
        # tree: one root (the service-side "request" span) per trace_id.
        by_trace: dict[str, list] = {}
        for e in events:
            tid = (e.get("args") or {}).get("trace_id")
            if tid is not None and e.get("ph") == "X":
                by_trace.setdefault(tid, []).append(e)
        assert by_trace
        for rid, spans in by_trace.items():
            roots = [
                s for s in spans if "parent_id" not in s["args"]
            ]
            assert len(roots) == 1, rid
            assert roots[0]["name"] == "request"
        # Bad endings left flight recordings behind.
        flights = list((tmp_path / "flight").glob("*.json"))
        assert flights
        one = load_flight(flights[0])
        assert one["schema"] == FLIGHT_SCHEMA

    def test_soak_summary_includes_slo_section(self):
        report = run_soak(SoakConfig(duration_s=300.0, seed=1))
        assert "SLO report" in report.summary()
        assert "verdict:" in report.summary()


# -- CLI ------------------------------------------------------------------


class TestRequestObsCLI:
    def test_slo_missing_file_structured_error(self, tmp_path, capsys):
        assert cli.main(["slo", str(tmp_path / "none")]) == 3
        err = json.loads(capsys.readouterr().out)
        assert err["error"]["code"] == "no-slo"

    def test_slo_ok_exit_zero(self, tmp_path, capsys):
        eng = SLOEngine()
        eng.record("availability", 1.0, True)
        eng.write_json(tmp_path / "slo.json", 5.0)
        # Accepts the rundir or the file path.
        assert cli.main(["slo", str(tmp_path)]) == 0
        assert cli.main(["slo", str(tmp_path / "slo.json")]) == 0
        assert "all error budgets intact" in capsys.readouterr().out

    def test_inspect_request_cli(self, tmp_path, capsys):
        book = FlightBook(capacity=8, out_dir=tmp_path / "flight")
        book.open("req-5", tenant="t1")
        book.note("req-5", "admit", t_service=0.5)
        book.settle("req-5", outcome="failed: boom", dump=True)
        assert cli.main(
            ["inspect", str(tmp_path), "--request", "req-5"]
        ) == 0
        out = capsys.readouterr().out
        assert "flight recorder : req-5" in out
        assert "failed: boom" in out
        assert cli.main(
            ["inspect", str(tmp_path), "--request", "req-6"]
        ) == 5
        err = json.loads(capsys.readouterr().out)
        assert err["error"]["code"] == "no-flight"

    def test_serve_soak_rundir_cli(self, tmp_path, capsys):
        rundir = tmp_path / "run"
        # 600 simulated seconds: enough admitted traffic (~150 events)
        # that the one expected shed stays inside the 1% availability
        # budget; shorter windows make single sheds bust it.
        rc = cli.main([
            "serve", "--soak", "--backend", "sim",
            "--duration", "600", "--seed", "3",
            "--rundir", str(rundir),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "SLO report" in out
        assert (rundir / "slo.json").exists()
        assert (rundir / "trace.json").exists()
        assert cli.main(["slo", str(rundir)]) == 0
