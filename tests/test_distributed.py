"""Distributed (simulated-MPI) runs vs the single-process model.

The acceptance criterion is the paper's own: the communication
reorganization must not change the physics.  Every configuration below
must be *bitwise* identical to the single-process RTiModel.
"""

import numpy as np
import pytest

from repro.core import RTiModel, SimulationConfig
from repro.fault import GaussianSource
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.par.decomposition import (
    Decomposition,
    RankWork,
    WorkItem,
    equal_cell_assignment,
)
from repro.par.driver import run_distributed
from repro.errors import DecompositionError
from repro.topo import build_mini_kochi
from repro.validation import FlatBathymetry


def reference_run(grid, bathy, cfg, source, n_steps):
    model = RTiModel(grid, bathy, cfg)
    if source is not None:
        model.set_initial_condition(source)
    model.run(n_steps)
    return {
        bid: st.eta_interior().copy() for bid, st in model.states.items()
    }


def assert_identical(a: dict, b: dict):
    assert a.keys() == b.keys()
    for bid in a:
        assert np.array_equal(a[bid], b[bid]), (
            f"block {bid}: max diff {np.abs(a[bid] - b[bid]).max()}"
        )


class TestSingleLevel:
    def grid(self):
        return NestedGrid(
            [
                GridLevel(
                    index=1,
                    dx=100.0,
                    blocks=[
                        Block(0, 1, 0, 0, 24, 48),
                        Block(1, 1, 24, 0, 24, 48),
                    ],
                )
            ]
        )

    def test_two_ranks_bitwise(self):
        grid = self.grid()
        bathy = FlatBathymetry(50.0)
        cfg = SimulationConfig(dt=1.0, boundary="wall")
        src = GaussianSource(x0=2400.0, y0=2400.0, amplitude=1.0, sigma=600.0)
        decomp = Decomposition(
            grid,
            (
                RankWork(0, 1, (WorkItem(grid.block(0)),)),
                RankWork(1, 1, (WorkItem(grid.block(1)),)),
            ),
        )
        dist = run_distributed(grid, bathy, cfg, decomp, src, n_steps=30)
        ref = reference_run(grid, bathy, cfg, src, 30)
        assert_identical(ref, dist)

    def test_one_rank_trivially_identical(self):
        grid = self.grid()
        bathy = FlatBathymetry(50.0)
        cfg = SimulationConfig(dt=1.0, boundary="open")
        src = GaussianSource(x0=2400.0, y0=2400.0, amplitude=1.0, sigma=600.0)
        decomp = Decomposition(
            grid,
            (
                RankWork(
                    0, 1, (WorkItem(grid.block(0)), WorkItem(grid.block(1)))
                ),
            ),
        )
        dist = run_distributed(grid, bathy, cfg, decomp, src, n_steps=25)
        ref = reference_run(grid, bathy, cfg, src, 25)
        assert_identical(ref, dist)


class TestNested:
    def test_mini_kochi_distributed_bitwise(self):
        """Five levels, ten blocks, ranks split across levels."""
        mk = build_mini_kochi()
        cfg = SimulationConfig(dt=mk.dt)
        src = GaussianSource(
            x0=4_000.0, y0=16_000.0, amplitude=2.0, sigma=2_500.0
        )
        decomp = equal_cell_assignment(mk.grid, 5, split_blocks=False)
        n_steps = 120
        dist = run_distributed(
            mk.grid, mk.bathymetry, cfg, decomp, src, n_steps
        )
        ref = reference_run(mk.grid, mk.bathymetry, cfg, src, n_steps)
        assert_identical(ref, dist)

    def test_mini_kochi_max_ranks(self):
        """One rank per block (the most communication-heavy split)."""
        mk = build_mini_kochi()
        cfg = SimulationConfig(dt=mk.dt)
        src = GaussianSource(
            x0=4_000.0, y0=16_000.0, amplitude=2.0, sigma=2_500.0
        )
        blocks = mk.grid.all_blocks()
        decomp = Decomposition(
            mk.grid,
            tuple(
                RankWork(r, b.level, (WorkItem(b),))
                for r, b in enumerate(blocks)
            ),
        )
        n_steps = 60
        dist = run_distributed(
            mk.grid, mk.bathymetry, cfg, decomp, src, n_steps
        )
        ref = reference_run(mk.grid, mk.bathymetry, cfg, src, n_steps)
        assert_identical(ref, dist)


class TestValidation:
    def test_rejects_row_split_decompositions(self):
        mk = build_mini_kochi()
        cfg = SimulationConfig(dt=mk.dt)
        decomp = equal_cell_assignment(mk.grid, 12)  # forces row splits
        has_strip = any(
            not it.is_whole_block
            for rw in decomp.ranks
            for it in rw.items
        )
        if not has_strip:
            pytest.skip("decomposition happened to be whole-block")
        with pytest.raises(DecompositionError):
            run_distributed(mk.grid, mk.bathymetry, cfg, decomp, None, 1)


class TestAutoNestDistributed:
    def test_2d_block_layout_bitwise(self):
        """The hard case: an auto-generated 2-D block mosaic (59 blocks,
        L-shaped adjacencies, corner ghosts written by multiple seams,
        multi-level JNQ cascades) must still be bitwise identical."""
        from repro.topo import AutoNestConfig, ShelfBathymetry, build_auto_nest

        bathy = ShelfBathymetry(
            ocean_depth=2500.0, shelf_width=6_000.0, coast_y=8_000.0,
            coast_amplitude=600.0, coast_wavelength=9_000.0, land_slope=0.02,
        )
        grid = build_auto_nest(
            bathy, 27_000.0, 27_000.0,
            AutoNestConfig(n_levels=3, dx_coarsest=270.0, dt=0.5,
                           coastal_band_m=400.0),
        )
        cfg = SimulationConfig(dt=0.5)
        src = GaussianSource(x0=13_000.0, y0=18_000.0, amplitude=1.5,
                             sigma=2_000.0)
        decomp = equal_cell_assignment(grid, 4, split_blocks=False)
        n_steps = 40
        dist = run_distributed(grid, bathy, cfg, decomp, src, n_steps,
                               timeout=240.0)
        ref = reference_run(grid, bathy, cfg, src, n_steps)
        assert_identical(ref, dist)
