"""Split-block vs monolithic equivalence.

The RTi decomposition splits blocks across ranks; the paper's correctness
argument is that halo exchange makes the split run identical to the
monolithic one.  We verify that at machine precision for the in-process
model: a domain solved as one block must match the same domain solved as
two (or four) blocks.
"""

import numpy as np
import pytest

from repro.core import RTiModel, SimulationConfig
from repro.fault import GaussianSource
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.validation import FlatBathymetry, SlopedBathymetry


def make_model(blocks, bathy, nx_total, ny_total, **cfg):
    grid = NestedGrid(
        [GridLevel(index=1, dx=100.0, blocks=blocks)]
    )
    config = SimulationConfig(dt=1.0, **cfg)
    model = RTiModel(grid, bathy, config)
    return model


def gather_eta(model, nx_total, ny_total):
    """Assemble the global water level from all blocks."""
    out = np.full((ny_total, nx_total), np.nan)
    for st in model.states.values():
        b = st.block
        out[b.gj0 : b.gj1, b.gi0 : b.gi1] = st.eta_interior()
    assert not np.isnan(out).any()
    return out


SOURCE = GaussianSource(x0=3000.0, y0=3000.0, amplitude=1.0, sigma=800.0)


@pytest.mark.parametrize("bathy", [FlatBathymetry(50.0), SlopedBathymetry(40.0, 0.004)])
@pytest.mark.parametrize("boundary", ["wall", "open"])
def test_vertical_split_bitwise(bathy, boundary):
    nx = ny = 60
    mono = make_model([Block(0, 1, 0, 0, nx, ny)], bathy, nx, ny, boundary=boundary)
    split = make_model(
        [Block(0, 1, 0, 0, 27, ny), Block(1, 1, 27, 0, 33, ny)],
        bathy, nx, ny, boundary=boundary,
    )
    mono.set_initial_condition(SOURCE)
    split.set_initial_condition(SOURCE)
    for _ in range(40):
        mono.step()
        split.step()
    a = gather_eta(mono, nx, ny)
    b = gather_eta(split, nx, ny)
    assert np.array_equal(a, b), f"max diff {np.abs(a - b).max()}"


def test_horizontal_split_bitwise():
    nx = ny = 60
    bathy = FlatBathymetry(50.0)
    mono = make_model([Block(0, 1, 0, 0, nx, ny)], bathy, nx, ny, boundary="wall")
    split = make_model(
        [Block(0, 1, 0, 0, nx, 24), Block(1, 1, 0, 24, nx, 36)],
        bathy, nx, ny, boundary="wall",
    )
    mono.set_initial_condition(SOURCE)
    split.set_initial_condition(SOURCE)
    for _ in range(40):
        mono.step()
        split.step()
    assert np.array_equal(
        gather_eta(mono, nx, ny), gather_eta(split, nx, ny)
    )


def test_three_way_split_bitwise():
    nx = ny = 60
    bathy = FlatBathymetry(50.0)
    mono = make_model([Block(0, 1, 0, 0, nx, ny)], bathy, nx, ny, boundary="wall")
    split = make_model(
        [
            Block(0, 1, 0, 0, 18, ny),
            Block(1, 1, 18, 0, 21, ny),
            Block(2, 1, 39, 0, 21, ny),
        ],
        bathy, nx, ny, boundary="wall",
    )
    mono.set_initial_condition(SOURCE)
    split.set_initial_condition(SOURCE)
    for _ in range(40):
        mono.step()
        split.step()
    assert np.array_equal(
        gather_eta(mono, nx, ny), gather_eta(split, nx, ny)
    )


def test_split_with_wetdry_front():
    """Equivalence must survive the moving shoreline crossing the seam."""
    nx = ny = 48
    bathy = SlopedBathymetry(8.0, 0.004)  # shoreline at y = 2000 m
    mono = make_model([Block(0, 1, 0, 0, nx, ny)], bathy, nx, ny, boundary="wall")
    split = make_model(
        [Block(0, 1, 0, 0, 24, ny), Block(1, 1, 24, 0, 24, ny)],
        bathy, nx, ny, boundary="wall",
    )
    src = GaussianSource(x0=2400.0, y0=3600.0, amplitude=1.5, sigma=500.0)
    mono.set_initial_condition(src)
    split.set_initial_condition(src)
    for _ in range(80):
        mono.step()
        split.step()
    a = gather_eta(mono, nx, ny)
    b = gather_eta(split, nx, ny)
    assert np.array_equal(a, b), f"max diff {np.abs(a - b).max()}"
    # Something actually happened (the wave moved).
    assert np.abs(a).max() > 0.01
