"""Tests for repro.grid.staggered and repro.grid.cfl."""

import math

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.errors import CFLError
from repro.grid import staggered as sg
from repro.grid.cfl import (
    cfl_time_step,
    check_cfl,
    check_cfl_depth_field,
    max_wave_speed,
)


class TestStaggeredShapes:
    def test_shape_relations(self):
        ny, nx, g = 7, 11, sg.NGHOST
        ez = sg.eta_shape(ny, nx)
        mz = sg.flux_m_shape(ny, nx)
        nz = sg.flux_n_shape(ny, nx)
        assert ez == (ny + 2 * g, nx + 2 * g)
        assert mz == (ez[0], ez[1] + 1)
        assert nz == (ez[0] + 1, ez[1])

    def test_interior_selects_physical_cells(self):
        ny, nx = 5, 8
        arr = np.zeros(sg.eta_shape(ny, nx))
        arr[sg.interior(ny, nx)] = 1.0
        assert arr.sum() == ny * nx
        # Ghosts untouched.
        assert arr[0, :].sum() == 0 and arr[:, -1].sum() == 0

    def test_interior_face_counts(self):
        ny, nx = 5, 8
        m = np.zeros(sg.flux_m_shape(ny, nx))
        m[sg.interior_m(ny, nx)] = 1.0
        assert m.sum() == ny * (nx + 1)
        n = np.zeros(sg.flux_n_shape(ny, nx))
        n[sg.interior_n(ny, nx)] = 1.0
        assert n.sum() == (ny + 1) * nx

    def test_inner_faces_exclude_edges(self):
        ny, nx = 5, 8
        m = np.zeros(sg.flux_m_shape(ny, nx))
        m[sg.inner_m(ny, nx)] = 1.0
        assert m.sum() == ny * (nx - 1)
        n = np.zeros(sg.flux_n_shape(ny, nx))
        n[sg.inner_n(ny, nx)] = 1.0
        assert n.sum() == (ny - 1) * nx

    def test_two_ghost_layers(self):
        # The upwind advection requires two ghost layers (module docs).
        assert sg.NGHOST == 2


class TestCFL:
    def test_wave_speed_formula(self):
        assert max_wave_speed(100.0) == pytest.approx(
            math.sqrt(2 * GRAVITY * 100.0)
        )

    def test_zero_depth_infinite_dt(self):
        assert cfl_time_step(10.0, 0.0) == math.inf

    def test_paper_kochi_operating_point(self):
        # dx = 10 m at dt = 0.2 s admits depths up to dx^2/(2 g dt^2).
        h_limit = 10.0**2 / (2 * GRAVITY * 0.2**2)
        check_cfl(10.0, 0.2, 0.99 * h_limit)
        with pytest.raises(CFLError):
            check_cfl(10.0, 0.2, 1.01 * h_limit)

    def test_safety_factor_shrinks_dt(self):
        full = cfl_time_step(10.0, 50.0, safety=1.0)
        assert cfl_time_step(10.0, 50.0, safety=0.5) == pytest.approx(full / 2)

    def test_invalid_args(self):
        with pytest.raises(CFLError):
            cfl_time_step(-1.0, 10.0)
        with pytest.raises(CFLError):
            cfl_time_step(10.0, 10.0, safety=0.0)
        with pytest.raises(CFLError):
            check_cfl(10.0, -0.1, 10.0)
        with pytest.raises(CFLError):
            max_wave_speed(-5.0)

    def test_depth_field_ignores_land(self):
        depth = np.array([[-500.0, 10.0], [5.0, -1000.0]])
        # Land cells (negative) must not constrain the time step.
        check_cfl_depth_field(10.0, 0.2, depth)

    def test_depth_field_all_land_is_unconstrained(self):
        check_cfl_depth_field(1.0, 100.0, np.full((3, 3), -10.0))
