"""Tests for repro.core.boundary and repro.core.outputs."""

import numpy as np
import pytest

from repro.core.boundary import (
    apply_open_boundary,
    apply_wall_boundary,
    fill_ghosts_zero_gradient,
)
from repro.core.outputs import OutputAccumulator
from repro.grid.block import Block
from repro.grid.staggered import NGHOST, eta_shape, flux_m_shape, flux_n_shape

G = NGHOST


def fields(ny=4, nx=6, depth=100.0):
    z = np.zeros(eta_shape(ny, nx))
    m = np.ones(flux_m_shape(ny, nx))
    n = np.ones(flux_n_shape(ny, nx))
    h = np.full(eta_shape(ny, nx), depth)
    return z, m, n, h


class TestWallBoundary:
    def test_zeroes_all_edges(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx)
        apply_wall_boundary(m, n)
        assert np.all(m[G : G + ny, G] == 0.0)
        assert np.all(m[G : G + ny, G + nx] == 0.0)
        assert np.all(n[G, G : G + nx] == 0.0)
        assert np.all(n[G + ny, G : G + nx] == 0.0)
        # Interior faces untouched.
        assert np.all(m[G : G + ny, G + 1 : G + nx] == 1.0)

    def test_selective_sides(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx)
        apply_wall_boundary(m, n, sides=("W",))
        assert np.all(m[G : G + ny, G] == 0.0)
        assert np.all(m[G : G + ny, G + nx] == 1.0)


class TestOpenBoundary:
    def test_outgoing_characteristic_sign(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx)
        z[...] = 0.5  # positive elevation everywhere
        apply_open_boundary(z, m, n, h)
        # East edge radiates outward (+x), west edge outward (-x).
        assert np.all(m[G : G + ny, G + nx] > 0.0)
        assert np.all(m[G : G + ny, G] < 0.0)
        assert np.all(n[G + ny, G : G + nx] > 0.0)
        assert np.all(n[G, G : G + nx] < 0.0)

    def test_magnitude_is_characteristic(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx, depth=100.0)
        z[...] = 0.5
        apply_open_boundary(z, m, n, h)
        c = np.sqrt(9.80665 * 100.5)
        assert m[G + 1, G + nx] == pytest.approx(c * 0.5)

    def test_dry_edge_radiates_nothing(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx, depth=-5.0)
        z[...] = 5.0
        apply_open_boundary(z, m, n, h)
        assert np.all(m[G : G + ny, G + nx] == 0.0)


class TestGhostFill:
    def test_zero_gradient_columns_then_rows(self):
        arr = np.zeros((8, 8))
        arr[G:-G, G:-G] = np.arange(16).reshape(4, 4) + 1.0
        fill_ghosts_zero_gradient(arr, ("W", "E", "S", "N"))
        # Columns copy the first/last physical column.
        assert np.all(arr[G:-G, 0] == arr[G:-G, G])
        assert np.all(arr[G:-G, -1] == arr[G:-G, -G - 1])
        # Rows copy whole padded rows -> corners equal corner cells.
        assert arr[0, 0] == arr[G, G]
        assert arr[-1, -1] == arr[-G - 1, -G - 1]

    def test_partial_sides(self):
        arr = np.zeros((8, 8))
        arr[G:-G, G:-G] = 1.0
        fill_ghosts_zero_gradient(arr, ("N",))
        assert np.all(arr[-1, G:-G] == 1.0)
        assert np.all(arr[:, 0] == 0.0)


class TestOutputAccumulator:
    def make(self, ny=4, nx=4, depth=10.0):
        blk = Block(0, 1, 0, 0, nx, ny)
        d = np.full((ny, nx), depth)
        return blk, d, OutputAccumulator(blk, d, np.zeros((ny, nx)))

    def test_zmax_tracks_running_maximum(self):
        blk, d, acc = self.make()
        z = np.zeros(eta_shape(4, 4))
        m = np.zeros(flux_m_shape(4, 4))
        n = np.zeros(flux_n_shape(4, 4))
        h = np.full(eta_shape(4, 4), 10.0)
        z[G + 1, G + 1] = 2.0
        acc.update(z, m, n, h, time=1.0)
        z[G + 1, G + 1] = 1.0
        z[G + 2, G + 2] = 3.0
        acc.update(z, m, n, h, time=2.0)
        assert acc.zmax[1, 1] == 2.0
        assert acc.zmax[2, 2] == 3.0

    def test_arrival_time_first_crossing(self):
        blk, d, acc = self.make()
        z = np.zeros(eta_shape(4, 4))
        m = np.zeros(flux_m_shape(4, 4))
        n = np.zeros(flux_n_shape(4, 4))
        h = np.full(eta_shape(4, 4), 10.0)
        acc.update(z, m, n, h, time=1.0)
        assert np.all(np.isinf(acc.arrival_time))
        z[G, G] = 0.5
        acc.update(z, m, n, h, time=2.0)
        acc.update(z, m, n, h, time=3.0)
        assert acc.arrival_time[0, 0] == 2.0
        assert np.isinf(acc.arrival_time[1, 1])

    def test_inundation_only_on_land(self):
        blk = Block(0, 1, 0, 0, 2, 2)
        depth = np.array([[-1.0, 10.0], [10.0, 10.0]])
        acc = OutputAccumulator(blk, depth, np.where(depth < 0, -depth, 0.0))
        z = np.zeros(eta_shape(2, 2))
        m = np.zeros(flux_m_shape(2, 2))
        n = np.zeros(flux_n_shape(2, 2))
        h = np.pad(depth, G, mode="edge")
        z[G:-G, G:-G] = np.array([[1.5, 0.0], [0.0, 0.0]])  # flood the land cell
        acc.update(z, m, n, h, time=5.0)
        assert acc.inundation_max[0, 0] == pytest.approx(0.5)
        assert acc.inundation_max[1, 1] == 0.0
        assert acc.inundated_area(10.0) == pytest.approx(100.0)

    def test_speed_capped_and_thin_film_ignored(self):
        blk, d, acc = self.make(depth=0.005)  # 5 mm of water
        z = np.zeros(eta_shape(4, 4))
        m = np.full(flux_m_shape(4, 4), 10.0)
        n = np.zeros(flux_n_shape(4, 4))
        h = np.full(eta_shape(4, 4), 0.005)
        acc.update(z, m, n, h, time=1.0)
        assert acc.vmax.max() == 0.0  # below SPEED_MIN_DEPTH

    def test_shape_validation(self):
        blk = Block(0, 1, 0, 0, 4, 4)
        with pytest.raises(ValueError):
            OutputAccumulator(blk, np.zeros((2, 2)), np.zeros((4, 4)))
