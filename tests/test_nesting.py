"""Tests for repro.nesting (JNZ restriction, JNQ interpolation)."""

import numpy as np
import pytest

from repro.errors import NestingError
from repro.grid.block import Block
from repro.grid.staggered import NGHOST, eta_shape, flux_m_shape, flux_n_shape
from repro.nesting.interp import (
    _subtract_intervals,
    child_boundary_segments,
    interpolate_fluxes,
)
from repro.nesting.restrict import restrict_eta, restriction_region

G = NGHOST


class TestRestrictionRegion:
    def setup_method(self):
        self.parent = Block(0, 1, 0, 0, 12, 12)
        self.child = Block(1, 2, 9, 9, 18, 18)  # parent cells (3,3)-(9,9)

    def test_full_overlap(self):
        regions = restriction_region(self.parent, self.child, mode="full")
        assert regions == [(3, 3, 9, 9)]

    def test_boundary_strips_cover_frame(self):
        regions = restriction_region(
            self.parent, self.child, mode="boundary", width=2
        )
        cells = set()
        for i0, j0, i1, j1 in regions:
            for j in range(j0, j1):
                for i in range(i0, i1):
                    assert (i, j) not in cells, "regions overlap"
                    cells.add((i, j))
        # Frame of width 2 around a 6x6 footprint: 36 - 4 = 32 cells.
        assert len(cells) == 32
        # The interior (center 2x2) is excluded.
        assert (5, 5) not in cells
        assert (3, 3) in cells and (8, 8) in cells

    def test_wide_strip_degenerates_to_full(self):
        regions = restriction_region(
            self.parent, self.child, mode="boundary", width=3
        )
        cells = sum((i1 - i0) * (j1 - j0) for i0, j0, i1, j1 in regions)
        assert cells == 36

    def test_no_overlap_gives_empty(self):
        far = Block(2, 2, 90, 90, 9, 9)
        assert restriction_region(self.parent, far) == []

    def test_unknown_mode(self):
        with pytest.raises(NestingError):
            restriction_region(self.parent, self.child, mode="bogus")


class TestRestrictEta:
    def test_mean_preserving(self):
        parent = Block(0, 1, 0, 0, 6, 6)
        child = Block(1, 2, 0, 0, 18, 18)
        pz = np.zeros(eta_shape(6, 6))
        cz = np.zeros(eta_shape(18, 18))
        rng = np.random.default_rng(0)
        cz[G : G + 18, G : G + 18] = rng.normal(0, 1, (18, 18))
        written = restrict_eta(pz, cz, parent, child, mode="full")
        assert written == 36
        sub = cz[G : G + 18, G : G + 18].reshape(6, 3, 6, 3).mean(axis=(1, 3))
        assert np.allclose(pz[G : G + 6, G : G + 6], sub)

    def test_constant_field_restricts_to_constant(self):
        parent = Block(0, 1, 0, 0, 6, 6)
        child = Block(1, 2, 0, 0, 18, 18)
        pz = np.zeros(eta_shape(6, 6))
        cz = np.full(eta_shape(18, 18), 2.5)
        restrict_eta(pz, cz, parent, child, mode="full")
        assert np.allclose(pz[G : G + 6, G : G + 6], 2.5)

    def test_boundary_mode_leaves_interior(self):
        parent = Block(0, 1, 0, 0, 6, 6)
        child = Block(1, 2, 0, 0, 18, 18)
        pz = np.full(eta_shape(6, 6), -9.0)
        cz = np.full(eta_shape(18, 18), 1.0)
        restrict_eta(pz, cz, parent, child, mode="boundary", width=1)
        inner = pz[G + 1 : G + 5, G + 1 : G + 5]
        assert np.all(inner == -9.0)  # untouched
        assert np.all(pz[G, G : G + 6] == 1.0)  # bottom strip written

    def test_offset_child(self):
        parent = Block(0, 1, 0, 0, 12, 12)
        child = Block(1, 2, 9, 9, 9, 9)  # parent cells (3,3)-(6,6)
        pz = np.zeros(eta_shape(12, 12))
        cz = np.full(eta_shape(9, 9), 4.0)
        written = restrict_eta(pz, cz, parent, child, mode="full")
        assert written == 9
        assert np.all(pz[G + 3 : G + 6, G + 3 : G + 6] == 4.0)
        assert pz[G, G] == 0.0


class TestSubtractIntervals:
    def test_no_coverage(self):
        assert _subtract_intervals((0, 10), []) == [(0, 10)]

    def test_middle_hole(self):
        assert _subtract_intervals((0, 10), [(3, 6)]) == [(0, 3), (6, 10)]

    def test_full_coverage(self):
        assert _subtract_intervals((0, 10), [(0, 10)]) == []

    def test_multiple_holes(self):
        out = _subtract_intervals((0, 12), [(2, 4), (8, 10)])
        assert out == [(0, 2), (4, 8), (10, 12)]


class TestChildBoundarySegments:
    def test_isolated_block_has_all_sides(self):
        blk = Block(0, 2, 0, 0, 9, 9)
        segs = child_boundary_segments([blk], blk)
        assert segs["W"] == [(0, 9)]
        assert segs["N"] == [(0, 9)]

    def test_neighbor_covers_shared_edge(self):
        a = Block(0, 2, 0, 0, 9, 9)
        b = Block(1, 2, 9, 0, 9, 9)
        segs = child_boundary_segments([a, b], a)
        assert segs["E"] == []
        assert segs["W"] == [(0, 9)]
        segs_b = child_boundary_segments([a, b], b)
        assert segs_b["W"] == []

    def test_partial_coverage(self):
        a = Block(0, 2, 0, 0, 9, 18)
        b = Block(1, 2, 9, 0, 9, 9)  # covers lower half of a's east edge
        segs = child_boundary_segments([a, b], a)
        assert segs["E"] == [(9, 18)]


class TestInterpolateFluxes:
    def test_west_edge_copy(self):
        parent = Block(0, 1, 0, 0, 6, 6)
        child = Block(1, 2, 3, 0, 9, 18)  # west edge at parent face 1
        pm = np.zeros(flux_m_shape(6, 6))
        pn = np.zeros(flux_n_shape(6, 6))
        cm = np.zeros(flux_m_shape(18, 9))
        cn = np.zeros(flux_n_shape(18, 9))
        # Parent M at face column 1 (array col G+1), rows 0..5.
        pm[G : G + 6, G + 1] = np.arange(6, dtype=float) + 1.0
        segs = {"W": [(0, 18)], "E": [], "S": [], "N": []}
        written = interpolate_fluxes(pm, pn, cm, cn, parent, child, segs)
        assert written == 18
        edge = cm[G : G + 18, G]
        assert np.array_equal(edge, np.repeat(np.arange(6) + 1.0, 3))

    def test_south_edge_copy(self):
        parent = Block(0, 1, 0, 0, 6, 6)
        child = Block(1, 2, 0, 3, 18, 9)  # south edge at parent face row 1
        pm = np.zeros(flux_m_shape(6, 6))
        pn = np.zeros(flux_n_shape(6, 6))
        cm = np.zeros(flux_m_shape(9, 18))
        cn = np.zeros(flux_n_shape(9, 18))
        pn[G + 1, G : G + 6] = 7.0
        segs = {"W": [], "E": [], "S": [(0, 18)], "N": []}
        written = interpolate_fluxes(pm, pn, cm, cn, parent, child, segs)
        assert written == 18
        assert np.all(cn[G, G : G + 18] == 7.0)

    def test_flux_conservation_through_interface(self):
        # Discharge (flux per unit width) copied to 3 child faces of 1/3
        # width carries exactly the parent's volume flux.
        parent = Block(0, 1, 0, 0, 6, 6)
        child = Block(1, 2, 3, 0, 9, 18)
        pm = np.zeros(flux_m_shape(6, 6))
        pm[G : G + 6, G + 1] = 2.0
        cm = np.zeros(flux_m_shape(18, 9))
        pn = np.zeros(flux_n_shape(6, 6))
        cn = np.zeros(flux_n_shape(18, 9))
        segs = {"W": [(0, 18)], "E": [], "S": [], "N": []}
        interpolate_fluxes(pm, pn, cm, cn, parent, child, segs)
        dx_parent, dx_child = 30.0, 10.0
        parent_flux = float(pm[G : G + 6, G + 1].sum()) * dx_parent
        child_flux = float(cm[G : G + 18, G].sum()) * dx_child
        assert child_flux == pytest.approx(parent_flux)

    def test_misaligned_segment_raises(self):
        parent = Block(0, 1, 0, 0, 6, 6)
        child = Block(1, 2, 3, 0, 9, 18)
        arrs = (
            np.zeros(flux_m_shape(6, 6)),
            np.zeros(flux_n_shape(6, 6)),
            np.zeros(flux_m_shape(18, 9)),
            np.zeros(flux_n_shape(18, 9)),
        )
        with pytest.raises(NestingError):
            interpolate_fluxes(
                *arrs, parent, child, {"W": [(0, 17)], "E": [], "S": [], "N": []}
            )
