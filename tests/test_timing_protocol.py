"""Tests for the message cost model and UCX-style protocol selection."""

import pytest

from repro.errors import ConfigurationError
from repro.par.protocol import ProtocolConfig, message_time
from repro.par.timing import MessageCostModel


class TestMessageCostModel:
    def test_host_time_latency_plus_bandwidth(self):
        m = MessageCostModel(nic_latency_us=2.0, nic_bw_gbs=10.0,
                             host_mpi_overhead_us=1.0)
        # 1 MB at 10 GB/s = 100 us, plus 3 us overheads.
        assert m.host_time_us(1_000_000) == pytest.approx(103.0)

    def test_staged_includes_two_pcie_copies(self):
        m = MessageCostModel()
        nbytes = 100_000
        assert m.staged_time_us(nbytes) == pytest.approx(
            2 * m.pcie_copy_us(nbytes) + m.host_time_us(nbytes)
        )

    def test_staged_slower_than_host(self):
        m = MessageCostModel()
        assert m.staged_time_us(65536) > m.host_time_us(65536)

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigurationError):
            MessageCostModel(nic_bw_gbs=0.0)


class TestProtocolSelection:
    def setup_method(self):
        self.cost = MessageCostModel(nic_latency_us=2.0, nic_bw_gbs=12.5)

    def test_default_threshold_sends_small_eager(self):
        cfg = ProtocolConfig(proto_auto=False)
        small = 8 * 1024  # below threshold -> slow eager bounce
        t_eager = message_time(small, self.cost, cfg, path="gdr")
        t_auto = message_time(
            small, self.cost, ProtocolConfig(proto_auto=True), path="gdr"
        )
        # Auto selection must never be slower than the default.
        assert t_auto <= t_eager
        # And for device buffers, the eager bounce is dramatically slower.
        assert t_eager > 3 * t_auto

    def test_large_messages_rendezvous_either_way(self):
        cfg_def = ProtocolConfig(proto_auto=False)
        cfg_auto = ProtocolConfig(proto_auto=True)
        big = 1024 * 1024
        assert message_time(big, self.cost, cfg_def, path="gdr") == pytest.approx(
            message_time(big, self.cost, cfg_auto, path="gdr")
        )

    def test_affinity_penalty(self):
        big = 1024 * 1024
        good = ProtocolConfig(proto_auto=True, nic_affinity=True)
        bad = ProtocolConfig(proto_auto=True, nic_affinity=False)
        assert message_time(big, self.cost, bad, path="gdr") > message_time(
            big, self.cost, good, path="gdr"
        )

    def test_paths(self):
        assert message_time(1000, self.cost, path="host") == pytest.approx(
            self.cost.host_time_us(1000)
        )
        assert message_time(1000, self.cost, path="staged") == pytest.approx(
            self.cost.staged_time_us(1000)
        )
        with pytest.raises(ConfigurationError):
            message_time(1000, self.cost, path="avian")

    def test_rank_scaling_mechanism(self):
        """The Fig.-14a mechanism: shrinking messages cross the threshold.

        Large messages (few ranks) ride rendezvous and beat host staging;
        small messages (many ranks) fall onto the eager bounce and lose
        to it, until UCX_PROTO_ENABLE recovers the rendezvous path.
        """
        cfg = ProtocolConfig(proto_auto=False)
        big, small = 128 * 1024, 8 * 1024
        assert message_time(big, self.cost, cfg, path="gdr") < \
            self.cost.staged_time_us(big)
        assert message_time(small, self.cost, cfg, path="gdr") > \
            self.cost.staged_time_us(small)
        tuned = ProtocolConfig(proto_auto=True)
        assert message_time(small, self.cost, tuned, path="gdr") < \
            self.cost.staged_time_us(small)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(eager_gpu_bw_gbs=0.0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(cross_switch_bw_factor=1.5)
