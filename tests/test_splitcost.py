"""Tests for the 1-D vs 2-D decomposition trade-off model."""

import pytest

from repro.errors import DecompositionError
from repro.grid.block import Block
from repro.par.splitcost import best_split, compare_1d_2d, split_cost


def block(nx=1200, ny=768):
    return Block(0, 1, 0, 0, nx, ny)


class TestSplitCost:
    def test_1d_keeps_full_inner_loop(self):
        c = split_cost(block(), 1, 8, "vector")
        assert c.inner_loop_length == 1200
        assert c.halo_cells_per_rank == pytest.approx(2 * 2 * 1200)

    def test_2d_reduces_comm(self):
        one = split_cost(block(), 1, 16, "vector")
        two = split_cost(block(), 4, 4, "vector")
        assert two.halo_cells_per_rank < one.halo_cells_per_rank

    def test_2d_shortens_vectors(self):
        one = split_cost(block(), 1, 16, "vector")
        two = split_cost(block(), 4, 4, "vector")
        assert two.inner_loop_length == one.inner_loop_length / 4
        assert two.vector_efficiency < one.vector_efficiency

    def test_gpu_has_no_vector_penalty(self):
        c = split_cost(block(), 4, 4, "gpu")
        assert c.compute_penalty == pytest.approx(1.0)

    def test_single_rank_no_halo(self):
        c = split_cost(block(), 1, 1, "cpu")
        assert c.halo_cells_per_rank == 0.0

    def test_validation(self):
        with pytest.raises(DecompositionError):
            split_cost(block(), 0, 4, "cpu")
        with pytest.raises(DecompositionError):
            split_cost(block(nx=4), 8, 1, "cpu")
        with pytest.raises(DecompositionError):
            split_cost(block(), 2, 2, "fpga")


class TestPaperRationale:
    """Section II-B: 1-D is right for the VE, 2-D for the GPU."""

    def test_ve_prefers_1d(self):
        c = best_split(block(), 16, "vector")
        assert c.px == 1  # rows only: the paper's choice

    def test_gpu_prefers_2d(self):
        c = best_split(block(), 16, "gpu")
        assert c.px > 1  # comm-optimal Cartesian split

    def test_comparison_shape(self):
        cmp = compare_1d_2d(block(), 16, "vector")
        # 2-D moves less halo but pays more compute on the VE.
        assert cmp["2d"].halo_cells_per_rank < cmp["1d"].halo_cells_per_rank
        assert cmp["2d"].compute_penalty > cmp["1d"].compute_penalty

    def test_cpu_intermediate(self):
        # CPU SIMD is short: the vector penalty rarely beats the comm win.
        c = best_split(block(), 16, "cpu")
        assert c.px >= 1  # well-defined either way
        cmp = compare_1d_2d(block(), 16, "cpu")
        assert cmp["2d"].compute_penalty < 1.2

    def test_no_valid_factorization(self):
        with pytest.raises(DecompositionError):
            best_split(Block(0, 1, 0, 0, 3, 3), 16, "cpu")
