"""Tests for the runtime layer (launch configs, breakdown, perf simulator)."""

import pytest

from repro.constants import KOCHI_STEPS
from repro.errors import ConfigurationError
from repro.hw import LaunchMode, get_platform, get_system
from repro.par.decomposition import build_decomposition, equal_cell_assignment
from repro.runtime import (
    BREAKDOWN_PHASES,
    ExecutionConfig,
    PerformanceSimulator,
    RankBreakdown,
    build_routine_kernels,
    simulate_run_seconds,
)
from repro.runtime.breakdown import PhaseTime, format_breakdown_table
from repro.topo import build_kochi_grid


@pytest.fixture(scope="module")
def kochi():
    return build_kochi_grid()


@pytest.fixture(scope="module")
def decomp16(kochi):
    return build_decomposition(kochi, 16)


class TestExecutionConfig:
    def test_defaults(self):
        cfg = ExecutionConfig()
        assert cfg.launch is LaunchMode.ASYNC
        assert cfg.n_queues == 4
        assert cfg.comm == "gdr_tuned"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(n_queues=0)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(comm="pigeon")


class TestBuildRoutineKernels:
    def test_one_kernel_per_item(self, decomp16):
        p = get_platform("a100-sxm4")
        rw = decomp16.ranks[5]
        ks = build_routine_kernels(rw, "NLMNT2", p, ExecutionConfig())
        assert len(ks) == len(rw.items)
        assert sum(k.cells for k in ks) == rw.n_cells

    def test_lpt_ordering(self, decomp16):
        p = get_platform("a100-sxm4")
        rw = decomp16.ranks[8]
        ks = build_routine_kernels(rw, "NLMASS", p, ExecutionConfig())
        sizes = [k.cells for k in ks]
        assert sizes == sorted(sizes, reverse=True)

    def test_merged_single_kernel(self, decomp16):
        p = get_platform("a100-sxm4")
        rw = decomp16.ranks[8]
        ks = build_routine_kernels(
            rw, "NLMNT2", p, ExecutionConfig(merged_kernels=True)
        )
        assert len(ks) == 1
        assert ks[0].solo_fraction == 1.0
        assert ks[0].cells == rw.n_cells
        assert ks[0].extra_bytes >= 0.0

    def test_merged_padding_costs_more_on_cpu(self, decomp16):
        gpu = get_platform("a100-sxm4")
        cpu = get_platform("xeon-8468")
        cfg = ExecutionConfig(merged_kernels=True)
        # Find a rank whose items have differing heights (real padding).
        rw = max(
            decomp16.ranks,
            key=lambda r: max(i.n_rows for i in r.items)
            - min(i.n_rows for i in r.items),
        )
        k_gpu = build_routine_kernels(rw, "NLMNT2", gpu, cfg)[0]
        k_cpu = build_routine_kernels(rw, "NLMNT2", cpu, cfg)[0]
        assert k_cpu.extra_bytes > k_gpu.extra_bytes


class TestBreakdown:
    def test_phase_accounting(self):
        bd = RankBreakdown(0)
        bd.phases["NLMASS"] = PhaseTime(busy_us=10.0)
        bd.phases["JNZ"] = PhaseTime(busy_us=2.0, wait_us=5.0)
        assert bd.step_us == pytest.approx(17.0)
        assert bd.total_us("JNZ") == pytest.approx(7.0)
        row = bd.as_row()
        assert row["NLMASS"] == 10.0

    def test_table_rendering(self):
        bd = RankBreakdown(3)
        text = format_breakdown_table([bd])
        for p in BREAKDOWN_PHASES:
            assert p in text
        assert "   3" in text


class TestPerformanceSimulator:
    def test_step_report_structure(self, kochi, decomp16):
        sim = PerformanceSimulator(
            kochi, decomp16, get_system("squid-gpu"), ExecutionConfig()
        )
        rep = sim.simulate_step()
        assert len(rep.breakdowns) == 16
        assert rep.step_us > 0
        # The step time equals the slowest rank's path.
        assert rep.step_us == pytest.approx(
            max(bd.step_us for bd in rep.breakdowns), rel=0.25
        )

    def test_compute_dominated_by_bottleneck_routines(self, kochi, decomp16):
        """Section IV-A: NLMASS+NLMNT2 account for the majority of time."""
        sim = PerformanceSimulator(
            kochi, decomp16, get_system("aoba-s"), ExecutionConfig()
        )
        rep = sim.simulate_step()
        total = sum(bd.step_us for bd in rep.breakdowns)
        hot = sum(
            bd.busy_us("NLMASS") + bd.busy_us("NLMNT2")
            for bd in rep.breakdowns
        )
        assert 0.5 < hot / total < 0.85

    def test_runtime_scales_with_steps(self, kochi, decomp16):
        s1 = simulate_run_seconds(
            kochi, decomp16, get_system("aoba-s"), n_steps=1000
        )
        s2 = simulate_run_seconds(
            kochi, decomp16, get_system("aoba-s"), n_steps=2000
        )
        assert s2 == pytest.approx(2 * s1)

    def test_gpu_sharing_requires_mps(self, kochi, decomp16):
        """V-E: the GPU version cannot run with ranks > GPUs."""
        with pytest.raises(ConfigurationError):
            PerformanceSimulator(
                kochi, decomp16, get_system("pegasus-gpu"),
                ExecutionConfig(), n_devices=4,
            )

    def test_cpu_multiplexing_allowed(self, kochi, decomp16):
        t_solo = simulate_run_seconds(
            kochi, decomp16, get_system("squid-cpu"), n_steps=1000
        )
        t_shared = simulate_run_seconds(
            kochi, decomp16, get_system("squid-cpu"), n_steps=1000, n_devices=8
        )
        assert t_shared > t_solo

    def test_cpu_forces_host_comm(self, kochi, decomp16):
        sim = PerformanceSimulator(
            kochi, decomp16, get_system("squid-cpu"),
            ExecutionConfig(comm="gdr_tuned"),
        )
        assert sim.cfg.comm == "host"

    def test_naive_comm_slower_than_gdr(self, kochi, decomp16):
        sys = get_system("pegasus-gpu")
        t = {
            c: simulate_run_seconds(
                kochi, decomp16, sys, ExecutionConfig(comm=c), n_steps=KOCHI_STEPS
            )
            for c in ("naive", "gdr_tuned")
        }
        assert t["naive"] > 1.5 * t["gdr_tuned"]

    def test_wait_times_reflect_imbalance(self, kochi):
        # With a deliberately imbalanced decomposition some rank must wait.
        d = equal_cell_assignment(kochi, 16, split_blocks=False)
        sim = PerformanceSimulator(
            kochi, d, get_system("squid-gpu"), ExecutionConfig()
        )
        rep = sim.simulate_step()
        waits = [
            pt.wait_us
            for bd in rep.breakdowns
            for pt in bd.phases.values()
        ]
        assert max(waits) > 0.0

    def test_mismatched_grid_rejected(self, kochi, decomp16):
        other = build_kochi_grid(seed=99)
        with pytest.raises(ConfigurationError):
            PerformanceSimulator(
                other, decomp16, get_system("aoba-s"), ExecutionConfig()
            )
