"""Tests for the performance observatory (PR 4).

Covers the four instruments the observatory adds on top of the telemetry
layer:

* the median/MAD **regression detector** and its edge cases (zero
  variance, single sample, improvements, exact threshold boundary);
* the versioned **baseline store** (save/load, bounded history, per-run
  snapshots) and the ``repro bench`` / ``repro compare`` CLI round trip,
  including the injected-slowdown self-test the gate must catch;
* **critical-path analytics** over recorded spans and simulated
  :class:`~repro.hw.streams.KernelEvent` timelines (launch-bound versus
  dependency idle, longest kernel chain);
* **online calibration**: fitting the Fig.-5 linear model from live
  kernel spans, drift against the stored reference model, and the
  ``repro retune --from-rundir`` re-tuning acceptance criterion.
"""

import json
import math

import pytest

import repro.obs as obs
from repro.balance.calibrate import (
    calibrate_from_spans,
    drift,
    kernel_samples,
)
from repro.balance.perfmodel import LinearPerfModel
from repro.errors import CalibrationError, ObservatoryError
from repro.hw.streams import KernelEvent
from repro.obs.baseline import (
    BENCH_SCHEMA,
    BaselineStore,
    flatten_sample,
    load_doc,
    parse_injection,
)
from repro.obs.critpath import (
    analyze_queues,
    analyze_spans,
    kernel_critical_chain,
    launch_latency_us,
    saturation_summary,
)
from repro.obs.metrics import get_registry
from repro.obs.regression import (
    DEFAULT_THRESHOLD,
    compare_docs,
    detect,
    direction_of,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with the telemetry layer dark."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Regression detector
# ---------------------------------------------------------------------------


class TestRegressionDetector:
    def test_direction_classification(self):
        assert direction_of("steps_per_second") == "higher"
        assert direction_of("cells_per_second") == "higher"
        assert direction_of("wall_s") == "lower"
        assert direction_of("phase_us.NLMNT2") == "lower"

    def test_zero_variance_baseline_uses_threshold_alone(self):
        base = [100.0, 100.0, 100.0]
        ok = detect("wall_s", base, [120.0])
        assert ok.noise_frac == 0.0
        assert not ok.regressed
        bad = detect("wall_s", base, [140.0])
        assert bad.regressed

    def test_single_sample_documents_work(self):
        v = detect("wall_s", [100.0], [150.0])
        assert v.baseline_median == 100.0
        assert v.delta_frac == pytest.approx(0.5)
        assert v.regressed

    def test_improvement_never_triggers(self):
        v = detect("wall_s", [100.0] * 3, [10.0])
        assert v.improved and not v.regressed
        # Direction-aware: a throughput *drop* is the regression.
        v = detect("steps_per_second", [100.0] * 3, [10.0])
        assert v.regressed and not v.improved
        v = detect("steps_per_second", [100.0] * 3, [500.0])
        assert v.improved and not v.regressed

    def test_threshold_boundary_is_exact(self):
        # delta exactly at the threshold passes (strict inequality)...
        at = detect("wall_s", [100.0], [130.0], threshold=0.30)
        assert at.delta_frac == at.gate_frac
        assert not at.regressed
        # ...the next representable value above it fails.
        above = detect(
            "wall_s", [100.0],
            [math.nextafter(130.0, math.inf)], threshold=0.30,
        )
        assert above.regressed

    def test_noisy_baseline_widens_its_own_gate(self):
        base = [100.0, 120.0, 140.0]  # median 120, MAD 20
        v = detect("wall_s", base, [190.0])
        assert v.noise_frac > DEFAULT_THRESHOLD
        assert v.gate_frac == pytest.approx(v.noise_frac)
        assert v.delta_frac > DEFAULT_THRESHOLD  # would fail a quiet gate
        assert not v.regressed  # but sits inside the noise band

    def test_zero_baseline_degrades_gracefully(self):
        worse = detect("wall_s", [0.0, 0.0], [5.0])
        assert worse.delta_frac == math.inf and worse.regressed
        same = detect("wall_s", [0.0, 0.0], [0.0])
        assert same.delta_frac == 0.0 and not same.regressed
        better = detect("steps_per_second", [0.0], [5.0])
        assert better.improved and not better.regressed

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            detect("wall_s", [], [1.0])
        with pytest.raises(ValueError):
            detect("wall_s", [1.0], [])
        with pytest.raises(ValueError):
            detect("wall_s", [1.0], [1.0], threshold=-0.1)


def _doc(scale_nlmnt2=1.0, scale_all=1.0, rev="abc1234", n=3):
    """A synthetic bench document with deterministic samples."""
    samples = []
    for i in range(n):
        jitter = 1.0 + 0.001 * i
        phase = {
            "NLMASS": 2000.0 * jitter * scale_all,
            "NLMNT2": 20000.0 * jitter * scale_all * scale_nlmnt2,
            "OUTPUT": 3500.0 * jitter * scale_all,
        }
        wall = sum(phase.values()) * 1e-6
        samples.append({
            "wall_s": wall,
            "steps_per_second": 40 / wall,
            "cells_per_second": 40 * 24_000 / wall,
            "halo_bytes": 334_080.0,
            "phase_us": phase,
        })
    return {
        "schema": BENCH_SCHEMA,
        "grid": "mini-kochi",
        "platform": "a100-sxm4",
        "git_rev": rev,
        "steps": 40,
        "repeats": n,
        "samples": samples,
    }


class TestCompareDocs:
    def test_identical_documents_pass(self):
        report = compare_docs(_doc(), _doc(rev="def5678"))
        assert report.ok
        assert report.baseline_rev == "abc1234"
        assert report.current_rev == "def5678"
        assert "no confirmed regressions" in report.summary()

    def test_injected_nlmnt2_slowdown_is_confirmed(self):
        report = compare_docs(_doc(), _doc(scale_nlmnt2=2.0))
        regressed = {v.metric for v in report.regressions}
        assert "phase_us.NLMNT2" in regressed
        assert "wall_s" in regressed
        assert "steps_per_second" in regressed  # throughput dropped
        assert "phase_us.NLMASS" not in regressed  # untouched phase
        assert "CONFIRMED REGRESSIONS" in report.summary()

    def test_improvement_reported_not_flagged(self):
        report = compare_docs(_doc(), _doc(scale_all=0.5))
        assert report.ok
        assert any(
            v.metric == "wall_s" for v in report.improvements
        )

    def test_only_shared_metrics_compared(self):
        cur = _doc()
        for s in cur["samples"]:
            del s["halo_bytes"]
            s["new_metric"] = 1.0
        report = compare_docs(_doc(), cur)
        metrics = {v.metric for v in report.verdicts}
        assert "halo_bytes" not in metrics
        assert "new_metric" not in metrics
        assert "wall_s" in metrics

    def test_legacy_flat_v1_document_still_compares(self):
        legacy = {
            "schema": "repro.bench_obs/1",
            "wall_s": 0.0255,
            "steps_per_second": 1568.6,
            "phase_us": {"NLMNT2": 20000.0, "NLMASS": 2000.0},
        }
        report = compare_docs(legacy, legacy)
        assert report.ok
        assert {v.metric for v in report.verdicts} >= {
            "wall_s", "steps_per_second", "phase_us.NLMNT2",
        }

    def test_flatten_sample_prefixes_phases(self):
        flat = flatten_sample(_doc()["samples"][0])
        assert "phase_us.NLMNT2" in flat
        assert "wall_s" in flat


# ---------------------------------------------------------------------------
# Baseline store + injection parsing
# ---------------------------------------------------------------------------


class TestBaselineStore:
    def test_save_load_round_trip(self, tmp_path):
        store = BaselineStore(tmp_path)
        doc = _doc()
        path = store.save(doc)
        assert path == tmp_path / "a100-sxm4.json"
        assert store.exists("a100-sxm4")
        assert store.platforms() == ["a100-sxm4"]
        loaded = store.load("a100-sxm4")
        assert loaded["git_rev"] == "abc1234"
        assert loaded["samples"] == doc["samples"]

    def test_history_is_bounded(self, tmp_path):
        from repro.obs.baseline import HISTORY_LIMIT

        store = BaselineStore(tmp_path)
        for i in range(HISTORY_LIMIT + 3):
            store.save(_doc(rev=f"rev{i}"))
        loaded = store.load("a100-sxm4")
        assert loaded["git_rev"] == f"rev{HISTORY_LIMIT + 2}"
        history = loaded["history"]
        assert len(history) == HISTORY_LIMIT
        # Oldest-first provenance chain; newest previous baseline last,
        # stored as a compact summary (no raw samples).
        assert history[-1]["git_rev"] == f"rev{HISTORY_LIMIT + 1}"
        assert all("samples" not in h for h in history)

    def test_rundir_snapshot(self, tmp_path):
        store = BaselineStore(tmp_path / "bl")
        rundir = tmp_path / "run"
        rundir.mkdir()
        snap = store.snapshot(rundir, _doc())
        assert snap == rundir / "bench.json"
        assert json.loads(snap.read_text())["schema"] == BENCH_SCHEMA

    def test_load_doc_missing_raises_cleanly(self, tmp_path):
        with pytest.raises(ObservatoryError):
            load_doc(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ObservatoryError):
            load_doc(bad)

    def test_parse_injection(self):
        assert parse_injection("NLMNT2:2.0") == {"NLMNT2": 2.0}
        assert parse_injection("NLMNT2:2,OUTPUT:1.5") == {
            "NLMNT2": 2.0, "OUTPUT": 1.5,
        }
        for bad in ("NLMNT2", "NLMNT2:zero", "NLMNT2:-1", ":2", ""):
            with pytest.raises(ObservatoryError):
                parse_injection(bad)


# ---------------------------------------------------------------------------
# bench / compare CLI round trip (the ISSUE acceptance flow)
# ---------------------------------------------------------------------------


class TestBenchCompareCli:
    def _bench(self, tmp_path, *extra):
        from repro.cli import main

        return main([
            "bench", "--repeats", "1", "--steps", "3",
            "--baseline-dir", str(tmp_path / "bl"), *extra,
        ])

    def test_bench_writes_document_and_creates_baseline(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH.json"
        assert self._bench(tmp_path, "--out", str(out)) == 0
        text = capsys.readouterr().out
        assert "baseline saved" in text
        doc = load_doc(out)
        assert doc["schema"] == BENCH_SCHEMA
        assert doc["platform"] == "a100-sxm4"
        assert doc["git_rev"]  # provenance is stamped
        assert doc["repeats"] == 1 and len(doc["samples"]) == 1
        assert doc["medians"]["steps_per_second"] > 0
        assert doc["queue_occupancy"]
        assert (tmp_path / "bl" / "a100-sxm4.json").exists()

    def test_second_bench_keeps_baseline(self, tmp_path, capsys):
        out = tmp_path / "BENCH.json"
        assert self._bench(tmp_path, "--out", str(out)) == 0
        first = load_doc(tmp_path / "bl" / "a100-sxm4.json")
        capsys.readouterr()
        assert self._bench(tmp_path, "--out", str(out)) == 0
        assert "baseline kept" in capsys.readouterr().out
        kept = load_doc(tmp_path / "bl" / "a100-sxm4.json")
        assert kept["created_s"] == first["created_s"]

    def test_update_baseline_promotes_and_keeps_history(
        self, tmp_path, capsys
    ):
        out = tmp_path / "BENCH.json"
        assert self._bench(tmp_path, "--out", str(out)) == 0
        assert self._bench(
            tmp_path, "--out", str(out), "--update-baseline"
        ) == 0
        doc = load_doc(tmp_path / "bl" / "a100-sxm4.json")
        assert len(doc["history"]) == 1

    def test_compare_missing_baseline_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        args = [
            "compare", "--current", "ignored.json",
            "--baseline-dir", str(tmp_path / "bl"),
        ]
        assert main(args) == 3
        assert "no baseline" in capsys.readouterr().out
        assert main(args + ["--allow-missing"]) == 0
        assert "warning" in capsys.readouterr().out

    def test_round_trip_unchanged_then_injected_regression(
        self, tmp_path, capsys
    ):
        """The ISSUE acceptance flow: bench, re-compare clean, then a 2x
        NLMNT2 slowdown must come back as a confirmed regression."""
        from repro.cli import main

        out = tmp_path / "BENCH.json"
        assert self._bench(tmp_path, "--out", str(out)) == 0
        capsys.readouterr()

        # Unchanged re-run: the baseline document compared against
        # itself is delta-zero on every metric — never flagged.
        assert main([
            "compare", "--current", str(out),
            "--baseline-dir", str(tmp_path / "bl"),
        ]) == 0
        assert "no confirmed regressions" in capsys.readouterr().out

        # Injected 2x NLMNT2 slowdown: confirmed, non-zero exit.
        slow = tmp_path / "BENCH_slow.json"
        assert self._bench(
            tmp_path, "--out", str(slow), "--no-baseline",
            "--inject-slowdown", "NLMNT2:2.0",
        ) == 0
        capsys.readouterr()
        assert main([
            "compare", "--current", str(slow),
            "--baseline-dir", str(tmp_path / "bl"),
        ]) == 1
        text = capsys.readouterr().out
        assert "CONFIRMED REGRESSIONS" in text
        assert "phase_us.NLMNT2" in text

    def test_bench_bad_injection_spec_fails_cleanly(self, tmp_path, capsys):
        assert self._bench(tmp_path, "--inject-slowdown", "NLMNT2") == 2
        assert "error" in capsys.readouterr().out

    def test_bench_rundir_snapshot(self, tmp_path, capsys):
        rundir = tmp_path / "run"
        rundir.mkdir()
        assert self._bench(
            tmp_path, "--out", str(tmp_path / "B.json"),
            "--rundir", str(rundir),
        ) == 0
        assert (rundir / "bench.json").exists()


# ---------------------------------------------------------------------------
# Critical-path analytics
# ---------------------------------------------------------------------------


def _span(name, rank, dur, ts=0.0):
    return {"name": name, "rank": rank, "dur_us": dur, "ts_us": ts}


class TestSpanCriticalPath:
    def test_attribution_and_critical_rank(self):
        spans = [
            _span("NLMASS", 0, 100.0), _span("JNZ", 0, 50.0),
            _span("NLMNT2", 0, 400.0),
            _span("NLMASS", 1, 150.0), _span("JNZ", 1, 80.0),
            _span("NLMNT2", 1, 600.0), _span("PTP_MN", 1, 70.0),
            _span("halo.pack", 1, 999.0),  # non-phase span: ignored
        ]
        report = analyze_spans(spans)
        assert report.critical.rank == 1
        assert report.critical.compute_us == pytest.approx(750.0)
        assert report.critical.exchange_us == pytest.approx(150.0)
        assert report.compute_fraction == pytest.approx(750.0 / 900.0)
        # The chain is in Fig.-2 pipeline order, only phases that ran.
        assert [name for name, _ in report.chain] == [
            "NLMASS", "JNZ", "NLMNT2", "PTP_MN",
        ]
        assert "critical path" in report.summary()

    def test_unranked_spans_fold_into_rank_zero(self):
        report = analyze_spans([_span("NLMNT2", None, 10.0)])
        assert report.critical.rank == 0

    def test_no_phase_spans_returns_none(self):
        assert analyze_spans([]) is None
        assert analyze_spans([_span("halo.pack", 0, 5.0)]) is None


def _ev(queue, enqueue, start, end, label="k"):
    return KernelEvent(
        label=label, routine="NLMNT2", queue=queue,
        enqueue_us=enqueue, start_us=start, end_us=end, bytes_moved=0.0,
    )


class TestQueueAnalytics:
    def test_launch_gap_versus_dependency_gap(self):
        events = [
            _ev(0, 0.0, 0.0, 10.0),
            _ev(0, 5.0, 10.0, 20.0),  # back-to-back: no gap
            # Gap of 12 us; the host only enqueued at t=30, so 10 us of
            # it is exposed launch latency, 2 us is startup phase.
            _ev(0, 30.0, 32.0, 40.0),
        ]
        (q,) = analyze_queues(events, makespan_us=40.0)
        assert q.queue == 0
        assert q.busy_us == pytest.approx(28.0)
        assert q.idle_us == pytest.approx(12.0)
        assert q.n_gaps == 1
        assert q.largest_gap_us == pytest.approx(12.0)
        assert q.launch_gap_us == pytest.approx(10.0)
        assert q.occupancy == pytest.approx(0.7)
        assert launch_latency_us(events) == pytest.approx(10.0)

    def test_dependency_gap_has_no_launch_share(self):
        # Enqueued long before the queue drained: the 5 us gap is pure
        # dependency/contention idle.
        events = [
            _ev(0, 0.0, 0.0, 10.0),
            _ev(0, 1.0, 15.0, 20.0),
        ]
        (q,) = analyze_queues(events)
        assert q.idle_us == pytest.approx(5.0)
        assert q.launch_gap_us == 0.0

    def test_tail_idle_counts_but_is_not_a_gap(self):
        events = [_ev(0, 0.0, 0.0, 10.0), _ev(1, 0.0, 0.0, 40.0)]
        reports = analyze_queues(events)
        q0 = next(q for q in reports if q.queue == 0)
        assert q0.idle_us == pytest.approx(30.0)
        assert q0.n_gaps == 0
        assert q0.occupancy == pytest.approx(0.25)

    def test_kernel_critical_chain_walks_back_to_back(self):
        chain_evs = [
            _ev(0, 0.0, 0.0, 10.0, "a"),
            _ev(0, 1.0, 10.0, 20.0, "b"),
            _ev(0, 2.0, 20.0, 35.0, "c"),
            _ev(1, 0.0, 0.0, 5.0, "other"),
        ]
        chain = kernel_critical_chain(chain_evs)
        assert [e.label for e in chain] == ["a", "b", "c"]
        assert kernel_critical_chain([]) == []

    def test_saturation_summary_modes(self):
        saturated = [_ev(0, 0.0, 0.0, 100.0)]
        text = saturation_summary(analyze_queues(saturated))
        assert "device saturated" in text
        launchy = [
            _ev(0, 0.0, 0.0, 10.0), _ev(0, 50.0, 50.0, 60.0),
        ]
        text = saturation_summary(analyze_queues(launchy))
        assert "launch path exposes" in text
        assert saturation_summary([]) == "no kernel events"


# ---------------------------------------------------------------------------
# Online calibration
# ---------------------------------------------------------------------------


def _kspan(cells, dur, routine="NLMNT2"):
    return {
        "name": f"{routine}.kernel",
        "dur_us": dur,
        "args": {"cells": cells},
    }


class TestCalibration:
    def test_exact_linear_fit(self):
        spans = [
            _kspan(c, 0.1 * c + 50.0)
            for c in (1000, 2000, 4000) for _ in range(2)
        ]
        model = calibrate_from_spans(spans)
        assert model.slope_us_per_cell == pytest.approx(0.1, rel=1e-6)
        assert model.intercept_us == pytest.approx(50.0, rel=1e-6)
        assert model.r2 == pytest.approx(1.0)

    def test_median_aggregation_rejects_outliers(self):
        spans = [
            _kspan(c, 0.1 * c + 50.0)
            for c in (1000, 2000, 4000) for _ in range(3)
        ]
        spans.append(_kspan(1000, 1e6))  # one GC pause / page-fault spike
        model = calibrate_from_spans(spans)
        assert model.slope_us_per_cell == pytest.approx(0.1, rel=1e-6)

    def test_needs_two_distinct_sizes(self):
        with pytest.raises(CalibrationError):
            calibrate_from_spans([_kspan(1000, 150.0)] * 5)
        with pytest.raises(CalibrationError):
            calibrate_from_spans([])

    def test_spans_without_cells_are_ignored(self):
        spans = [
            {"name": "NLMNT2.kernel", "dur_us": 1.0, "args": {}},
            {"name": "NLMNT2", "dur_us": 1.0, "args": {"cells": 10}},
        ]
        assert kernel_samples(spans) == ([], [])

    def test_live_model_emits_kernel_spans_with_cells(self):
        from repro.core import RTiModel, SimulationConfig
        from repro.fault import GaussianSource
        from repro.topo import build_mini_kochi

        mk = build_mini_kochi()
        model = RTiModel(mk.grid, mk.bathymetry, SimulationConfig(dt=mk.dt))
        model.set_initial_condition(
            GaussianSource(x0=4_000.0, y0=16_000.0,
                           amplitude=2.0, sigma=2_500.0)
        )
        obs.enable()
        model.run(2)
        spans = obs.get_tracer().export()
        cells, times = kernel_samples(spans)
        # 10 blocks x 2 steps, every span stamped with its block size.
        assert len(cells) == 20
        assert len(set(cells)) >= 2
        assert all(t >= 0.0 for t in times)
        fitted = calibrate_from_spans(spans)
        assert fitted.slope_us_per_cell > 0

    def test_drift_verdict(self):
        ref = LinearPerfModel(1.09e-4, 46.2, 0.942)
        near = LinearPerfModel(1.2e-4, 50.0, 0.95)
        d = drift(near, ref)
        assert not d.drifted
        assert "within tolerance" in d.summary()
        far = LinearPerfModel(2.5e-4, 46.2, 0.95)
        d = drift(far, ref)
        assert d.drifted
        assert d.slope_delta_frac == pytest.approx(2.5 / 1.09 - 1, rel=1e-3)
        assert "DRIFTED" in d.summary()
        with pytest.raises(CalibrationError):
            drift(near, ref, slope_tol=-1.0)

    def test_reference_model_registry(self):
        from repro.hw.registry import (
            PLATFORMS,
            platform_key_of,
            reference_model_for,
        )

        ref = reference_model_for("a100-sxm4")
        assert ref.slope_us_per_cell == pytest.approx(1.09e-4)
        assert ref.intercept_us == pytest.approx(46.2)
        # Platforms without a published Fig.-5 fit get a simulated one,
        # cached so repeated lookups agree.
        h100 = reference_model_for("h100-pcie")
        assert h100.slope_us_per_cell > 0
        again = reference_model_for("h100-pcie")
        assert again.slope_us_per_cell == h100.slope_us_per_cell
        assert platform_key_of(PLATFORMS["a100-sxm4"]) == "a100-sxm4"
        from repro.errors import PlatformError

        with pytest.raises(PlatformError):
            reference_model_for("no-such-platform")


# ---------------------------------------------------------------------------
# retune --from-rundir (acceptance)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_rundir(tmp_path_factory):
    """One traced mini-Kochi CLI run shared by the retune tests."""
    from repro.cli import main

    rundir = tmp_path_factory.mktemp("retune") / "run"
    assert main([
        "forecast", "--minutes", "0.05",
        "--rundir", str(rundir), "--export-trace",
    ]) == 0
    obs.disable()
    obs.reset()
    return rundir


class TestRetune:
    def test_retune_makespan_within_tolerance(self, traced_rundir):
        from repro.obs.observatory import retune_from_rundir
        from repro.topo import build_kochi_grid

        report = retune_from_rundir(
            traced_rundir, ranks=16, iterations=400,
        )
        assert report.n_samples > 0
        assert report.model.r2 > 0.5  # live fit is genuinely linear
        assert report.model.slope_us_per_cell > 0

        # The recalibrated model's predicted makespan for the re-tuned
        # decomposition must sit between the perfect-balance bound and
        # the naive equal-cells split it started from.
        g = build_kochi_grid()
        total_us = report.model.rank_time_us(
            [b.n_cells for lvl in g.levels for b in lvl.blocks]
        )
        lower_bound = total_us / report.ranks
        assert report.retuned_makespan_us >= lower_bound * (1 - 1e-9)
        assert report.retuned_makespan_us <= report.base_makespan_us * 1.10
        assert report.imbalance_retuned <= report.imbalance_base + 1e-9
        assert sum(report.blocks_per_rank) == sum(
            len(lvl.blocks) for lvl in g.levels
        )

    def test_retune_exports_imbalance_gauge(self, traced_rundir):
        from repro.obs.observatory import (
            IMBALANCE_GAUGE,
            retune_from_rundir,
        )

        report = retune_from_rundir(
            traced_rundir, ranks=16, iterations=200,
        )
        gauges = get_registry().to_dict()["gauges"]
        assert gauges[IMBALANCE_GAUGE] == pytest.approx(
            report.imbalance_retuned
        )

    def test_retune_cli(self, traced_rundir, capsys):
        from repro.cli import main

        assert main([
            "retune", "--from-rundir", str(traced_rundir),
            "--iterations", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "recalibrated model" in out
        assert "model drift" in out
        assert "re-tuned decomposition" in out

    def test_retune_untraced_rundir_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main
        from repro.obs.observatory import retune_from_rundir

        with pytest.raises(ObservatoryError):
            retune_from_rundir(tmp_path)
        assert main([
            "retune", "--from-rundir", str(tmp_path / "nope"),
        ]) == 1
        assert "error" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# inspect exit codes (satellite c)
# ---------------------------------------------------------------------------


class TestInspectExitCodes:
    def test_missing_rundir_structured_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["inspect", str(tmp_path / "nope")]) == 3
        err = json.loads(capsys.readouterr().out)["error"]
        assert err["code"] == "rundir-missing"
        assert err["exit_code"] == 3

    def test_no_spans_structured_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["inspect", str(tmp_path)]) == 4
        err = json.loads(capsys.readouterr().out)["error"]
        assert err["code"] == "no-spans"
        assert "--export-trace" in err["hint"]
