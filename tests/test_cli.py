"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_grid_command(self):
        args = build_parser().parse_args(["grid"])
        assert args.command == "grid"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.sockets == [4, 8, 16, 32]
        assert args.comm == "gdr_tuned"

    def test_sweep_custom(self):
        args = build_parser().parse_args(
            ["sweep", "--sockets", "8", "--systems", "aoba-s", "--comm", "naive"]
        )
        assert args.sockets == [8]
        assert args.systems == ["aoba-s"]

    def test_forecast_options(self):
        args = build_parser().parse_args(
            ["forecast", "--source", "nankai", "--minutes", "0.5"]
        )
        assert args.source == "nankai"
        assert args.minutes == 0.5

    def test_invalid_comm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--comm", "telepathy"])


class TestCommands:
    def test_grid_prints_table1(self, capsys):
        assert main(["grid"]) == 0
        out = capsys.readouterr().out
        assert "47,211,444" in out
        assert "84" in out

    def test_sweep_one_point(self, capsys):
        assert main(["sweep", "--sockets", "8", "--systems", "aoba-s"]) == 0
        out = capsys.readouterr().out
        assert "aoba-s" in out
        assert "s" in out

    def test_balance_runs(self, capsys):
        assert main(["balance", "--ranks", "16"]) == 0
        out = capsys.readouterr().out
        assert "perf model" in out
        assert "optimized" in out
