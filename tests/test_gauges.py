"""Tests for the virtual tide gauges (repro.core.gauges)."""

import numpy as np
import pytest

from repro.core import RTiModel, SimulationConfig
from repro.core.gauges import GaugeRecorder
from repro.errors import ConfigurationError
from repro.fault import GaussianSource
from repro.topo import build_mini_kochi
from repro.validation import FlatBathymetry, single_block_model


class TestResolution:
    def test_gauge_resolves_to_finest_level(self):
        mk = build_mini_kochi()
        model = RTiModel(mk.grid, mk.bathymetry, SimulationConfig(dt=mk.dt))
        # A point inside the level-5 band.
        rec = GaugeRecorder(model, [("coastal", 2_800.0, 9_100.0)])
        assert rec.gauges[0].level == 5
        # A point only covered by level 1.
        rec2 = GaugeRecorder(model, [("offshore", 20_000.0, 30_000.0)])
        assert rec2.gauges[0].level == 1

    def test_outside_domain_rejected(self):
        model = single_block_model(8, 8, 100.0, FlatBathymetry(10.0))
        with pytest.raises(ConfigurationError):
            GaugeRecorder(model, [("nowhere", 5_000.0, 5_000.0)])


class TestRecording:
    def test_series_lengths_and_times(self):
        model = single_block_model(16, 16, 100.0, FlatBathymetry(10.0))
        model.set_initial_condition(
            GaussianSource(x0=800.0, y0=800.0, amplitude=0.5, sigma=300.0)
        )
        rec = GaugeRecorder(model, [("center", 800.0, 800.0)])
        rec.run_and_record(20, every=2)
        t, eta = rec.gauges[0].series()
        assert len(t) == 10
        assert np.all(np.diff(t) > 0)

    def test_gauge_sees_the_wave(self):
        model = single_block_model(40, 40, 100.0, FlatBathymetry(50.0),
                                   boundary="wall")
        model.set_initial_condition(
            GaussianSource(x0=2_000.0, y0=2_000.0, amplitude=1.0, sigma=400.0)
        )
        rec = GaugeRecorder(
            model, [("near", 2_000.0, 2_000.0), ("far", 3_900.0, 3_900.0)]
        )
        rec.run_and_record(120)
        near, far = rec.gauges
        assert near.max_eta > 0.5  # sits on the source
        assert far.max_eta > 0.01  # the wave arrived
        # The far gauge peaks later than the near one.
        t_n = near.times[int(np.argmax(near.eta))]
        t_f = far.times[int(np.argmax(far.eta))]
        assert t_f > t_n

    def test_sampling_interval_validated(self):
        model = single_block_model(8, 8, 100.0, FlatBathymetry(10.0))
        rec = GaugeRecorder(model, [("g", 400.0, 400.0)])
        with pytest.raises(ConfigurationError):
            rec.run_and_record(5, every=0)

    def test_summary_format(self):
        model = single_block_model(8, 8, 100.0, FlatBathymetry(10.0))
        rec = GaugeRecorder(model, [("station-a", 400.0, 400.0)])
        rec.record()
        text = rec.summary()
        assert "station-a" in text
        assert "max eta" in text
