"""Tests for the operational resilience layer (repro.resilience).

Covers the satellite guarantees (configurable comm timeouts, rank ids on
failures) and the tentpole properties: checkpoint restore + re-run is
bitwise identical to an uninterrupted run, rollback after an injected
NaN converges to the clean result, and deadline pressure degrades
gracefully instead of failing.  The heavyweight fault sweep lives in
``tests/test_chaos_matrix.py`` (marked ``slow``).
"""

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RTiModel, SimulationConfig
from repro.errors import (
    CommTimeoutError,
    CommunicationError,
    ConfigurationError,
    NumericalError,
    PlatformError,
    ReproError,
    RetryExhaustedError,
)
from repro.fault import GaussianSource
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.par.comm import run_ranks
from repro.par.decomposition import equal_cell_assignment
from repro.resilience import (
    CheckpointRing,
    DeadlineSupervisor,
    FaultPlan,
    FaultSpec,
    HealthMonitor,
    RankCrashError,
    SimulatedClock,
    corrupt_state,
    drop_finest_level,
    nonfinite_blocks,
    resilient_run_distributed,
    retry_with_backoff,
    run_resilient_forecast,
)
from repro.validation import FlatBathymetry


def nested_grid():
    return NestedGrid(
        [
            GridLevel(index=1, dx=300.0, blocks=[Block(0, 1, 0, 0, 30, 30)]),
            GridLevel(
                index=2, dx=100.0, blocks=[Block(1, 2, 30, 30, 30, 30)]
            ),
        ]
    )


def flat_grid():
    return NestedGrid(
        [
            GridLevel(
                index=1,
                dx=100.0,
                blocks=[
                    Block(0, 1, 0, 0, 24, 48),
                    Block(1, 1, 24, 0, 24, 48),
                ],
            )
        ]
    )


def source():
    return GaussianSource(x0=4500.0, y0=4500.0, amplitude=1.0, sigma=1500.0)


def make_model(dt=1.0):
    model = RTiModel(
        nested_grid(),
        FlatBathymetry(50.0),
        SimulationConfig(dt=dt, boundary="wall"),
    )
    model.set_initial_condition(source())
    return model


def state_arrays(model):
    return {
        bid: (st.z_old.copy(), st.m_old.copy(), st.n_old.copy())
        for bid, st in model.states.items()
    }


def assert_states_identical(a, b):
    assert a.keys() == b.keys()
    for bid in a:
        for x, y in zip(a[bid], b[bid]):
            assert np.array_equal(x, y)


class TestFaultPlan:
    def test_random_is_deterministic(self):
        p1 = FaultPlan.random(42, n_faults=6, n_blocks=2)
        p2 = FaultPlan.random(42, n_faults=6, n_blocks=2)
        assert p1.to_dict() == p2.to_dict()
        assert p1.to_dict() != FaultPlan.random(43, n_faults=6).to_dict()

    def test_file_roundtrip(self, tmp_path):
        plan = FaultPlan.random(7, n_faults=5, n_blocks=3)
        path = tmp_path / "plan.json"
        plan.to_file(path)
        restored = FaultPlan.from_file(path)
        assert restored.to_dict() == plan.to_dict()
        assert restored.seed == 7

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault-plan"):
            FaultPlan.from_dict(
                {"faults": [{"kind": "nan", "step": 1, "typo": 1}]}
            )

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="bogus")
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="rank_crash")  # needs a rank
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="nan")  # needs a step
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="straggler", rank=0, factor=0.5)

    def test_one_shot_consumption(self):
        plan = FaultPlan([FaultSpec(kind="msg_drop", rank=0, op=3)])
        assert plan.comm_action(0, 2) is None
        assert plan.comm_action(1, 3) is None
        spec = plan.comm_action(0, 3)
        assert spec is not None and spec.kind == "msg_drop"
        assert plan.comm_action(0, 3) is None  # consumed
        assert plan.triggered_labels() == ["msg_drop rank=0 op=3"]

    def test_straggler_persists_across_ops(self):
        plan = FaultPlan(
            [FaultSpec(kind="straggler", rank=1, op=5, delay_s=0.0)]
        )
        assert plan.comm_action(1, 4) is None
        assert plan.comm_action(1, 5) is not None
        assert plan.comm_action(1, 6) is not None  # not consumed

    def test_straggler_factor_window(self):
        plan = FaultPlan(
            [FaultSpec(kind="straggler", rank=0, step=10, span=5, factor=3.0)]
        )
        assert plan.straggler_factor(9) == 1.0
        assert plan.straggler_factor(10) == 3.0
        assert plan.straggler_factor(14) == 3.0
        assert plan.straggler_factor(15) == 1.0


class TestCommTimeouts:
    """Satellites: configurable timeouts + rank ids on failures."""

    def test_recv_timeout_is_configurable_and_fast(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(source=0)  # never sent
            return None

        t0 = time.monotonic()
        with pytest.raises(CommTimeoutError) as ei:
            run_ranks(2, fn, comm_timeout=0.2)
        assert time.monotonic() - t0 < 5.0  # not the old opaque 30 s
        assert ei.value.failed_rank == 1

    def test_rank_exception_carries_rank_id(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("boom on two")
            return comm.rank

        with pytest.raises(ValueError, match="boom") as ei:
            run_ranks(3, fn, comm_timeout=2.0)
        assert ei.value.failed_rank == 2

    def test_comm_timeout_error_is_communication_error(self):
        assert issubclass(CommTimeoutError, CommunicationError)


class TestFaultyCommInjection:
    def run_pair(self, plan, comm_timeout=1.0):
        from repro.resilience.inject import FaultyComm

        def fn(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1, tag=9)
                return None
            return comm.recv(source=0, tag=9)

        return run_ranks(
            2,
            fn,
            comm_timeout=comm_timeout,
            comm_wrap=lambda c: FaultyComm(c, plan),
        )

    def test_msg_drop_times_out_receiver(self):
        plan = FaultPlan([FaultSpec(kind="msg_drop", rank=0, op=0)])
        with pytest.raises(CommTimeoutError):
            self.run_pair(plan, comm_timeout=0.3)

    def test_rank_crash_raises_communication_error(self):
        plan = FaultPlan([FaultSpec(kind="rank_crash", rank=0, op=0)])
        with pytest.raises(CommunicationError):
            self.run_pair(plan, comm_timeout=0.5)

    def test_msg_delay_still_delivers(self):
        plan = FaultPlan(
            [FaultSpec(kind="msg_delay", rank=0, op=0, delay_s=0.01)]
        )
        assert self.run_pair(plan)[1] == "payload"

    def test_rank_crash_error_carries_rank(self):
        err = RankCrashError("dead", failed_rank=3)
        assert err.failed_rank == 3
        assert isinstance(err, CommunicationError)


class TestResilientDistributed:
    def setup_case(self):
        grid = flat_grid()
        bathy = FlatBathymetry(50.0)
        cfg = SimulationConfig(dt=1.0, boundary="wall")
        decomp = equal_cell_assignment(grid, 2, split_blocks=False)
        return grid, bathy, cfg, decomp

    def reference(self, grid, bathy, cfg, n_steps):
        model = RTiModel(grid, bathy, cfg)
        model.set_initial_condition(source())
        model.run(n_steps)
        return {
            bid: st.eta_interior().copy()
            for bid, st in model.states.items()
        }

    def test_transient_crash_retried_and_identical(self):
        grid, bathy, cfg, decomp = self.setup_case()
        plan = FaultPlan([FaultSpec(kind="rank_crash", rank=0, op=2)])
        out, events = resilient_run_distributed(
            grid, bathy, cfg, decomp, source(), 10,
            fault_plan=plan, comm_timeout=1.0, backoff_s=0.01,
        )
        ref = self.reference(grid, bathy, cfg, 10)
        assert out.keys() == ref.keys()
        for bid in ref:
            assert np.array_equal(out[bid], ref[bid])
        assert any(ev.kind == "comm_retry" for ev in events)
        assert any(ev.rank == 0 for ev in events)

    def test_persistent_failure_falls_back_single_process(self):
        grid, bathy, cfg, decomp = self.setup_case()
        plan = FaultPlan(
            [FaultSpec(kind="rank_crash", rank=0, op=0) for _ in range(2)]
        )
        out, events = resilient_run_distributed(
            grid, bathy, cfg, decomp, source(), 10,
            fault_plan=plan, attempts=2, comm_timeout=1.0, backoff_s=0.01,
        )
        ref = self.reference(grid, bathy, cfg, 10)
        for bid in ref:
            assert np.array_equal(out[bid], ref[bid])
        kinds = [ev.kind for ev in events]
        assert kinds.count("comm_retry") == 2  # one per failed attempt
        assert kinds[-1] == "fallback_single_process"

    def test_retry_with_backoff_exhausts(self):
        calls = []

        def boom():
            calls.append(1)
            raise CommunicationError("always")

        with pytest.raises(RetryExhaustedError) as exc_info:
            retry_with_backoff(boom, attempts=3, backoff_s=0.001)
        assert len(calls) == 3
        # The exhaustion error says how much was tried and chains the
        # last underlying failure.
        assert exc_info.value.attempts == 3
        assert exc_info.value.elapsed_s >= 0.0
        assert isinstance(exc_info.value.__cause__, CommunicationError)


class TestCheckpointRing:
    def test_restore_and_rerun_bitwise_identical(self):
        model = make_model()
        model.run(10)
        ring = CheckpointRing()
        ring.snapshot(model)
        model.run(10)
        expected = state_arrays(model)
        expected_zmax = {
            bid: acc.zmax.copy() for bid, acc in model.outputs.items()
        }
        ring.restore(model)
        assert model.step_count == 10
        model.run(10)
        assert_states_identical(state_arrays(model), expected)
        for bid, acc in model.outputs.items():
            assert np.array_equal(acc.zmax, expected_zmax[bid])

    @settings(max_examples=8, deadline=None)
    @given(n_before=st.integers(1, 12), n_after=st.integers(1, 12))
    def test_restore_rerun_property(self, n_before, n_after):
        model = make_model()
        model.run(n_before)
        ring = CheckpointRing()
        ring.snapshot(model)
        model.run(n_after)
        expected = state_arrays(model)
        ring.restore(model)
        model.run(n_after)
        assert_states_identical(state_arrays(model), expected)

    def test_refuses_to_checkpoint_nan(self):
        model = make_model()
        model.run(3)
        corrupt_state(model.states, FaultSpec(kind="nan", step=3, block=0))
        assert nonfinite_blocks(model.states) == [0]
        with pytest.raises(NumericalError, match="refusing to checkpoint"):
            CheckpointRing().snapshot(model)

    def test_restore_rewinds_dt(self):
        from dataclasses import replace

        model = make_model(dt=1.0)
        model.run(2)
        ring = CheckpointRing()
        ring.snapshot(model)
        model.config = replace(model.config, dt=0.25)
        ring.restore(model)
        assert model.config.dt == 1.0

    def test_block_set_mismatch_rejected(self):
        model = make_model()
        ring = CheckpointRing()
        ring.snapshot(model)
        degraded = drop_finest_level(model)
        with pytest.raises(ReproError, match="block set"):
            ring.restore(degraded)

    def test_capacity_eviction(self):
        model = make_model()
        ring = CheckpointRing(capacity=2)
        for _ in range(4):
            model.run(1)
            ring.snapshot(model)
        assert len(ring) == 2
        assert ring.taken == 4
        assert ring.latest.step == model.step_count

    def test_empty_restore_rejected(self):
        with pytest.raises(ReproError, match="no checkpoint"):
            CheckpointRing().restore(make_model())


class TestHealthMonitor:
    def test_detects_nonfinite(self):
        model = make_model()
        model.run(2)
        corrupt_state(
            model.states, FaultSpec(kind="nan", step=2, block=1, field="m")
        )
        with pytest.raises(NumericalError, match="non-finite"):
            HealthMonitor().check(model)

    def test_detects_blowup(self):
        model = make_model()
        model.run(2)
        model.states[0].z_old[10, 10] = 5_000.0
        with pytest.raises(NumericalError, match="blow-up"):
            HealthMonitor(eta_limit=100.0).check(model)

    def test_detects_cfl_violation(self):
        # dt=3.0 passes the construction-time CFL check for still water
        # (sqrt(2*g*50)*3/100 = 0.94), but a 25 m surge raises the total
        # depth enough to erode the margin past 1.
        model = make_model(dt=3.0)
        model.states[1].z_old[...] += 25.0
        with pytest.raises(NumericalError, match="CFL"):
            HealthMonitor().check(model)

    def test_cadence(self):
        model = make_model()
        monitor = HealthMonitor(every=5)
        model.run(10, monitor=monitor)
        assert monitor.checks_run == 2

    def test_clean_state_passes(self):
        model = make_model()
        model.run(5)
        HealthMonitor(mass_tol=0.05).check(model)


class TestRollbackRecovery:
    def test_nan_rollback_converges_bitwise(self):
        clean = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=60.0,
        )
        plan = FaultPlan(
            [FaultSpec(kind="nan", step=33, block=1, field="z")]
        )
        faulty = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=60.0, fault_plan=plan,
        )
        assert clean.complete and faulty.complete
        assert faulty.rollbacks >= 1
        assert plan.triggered_labels() == ["nan step=33 z[block 1]"]
        assert_states_identical(
            state_arrays(faulty.model), state_arrays(clean.model)
        )

    @settings(max_examples=6, deadline=None)
    @given(step=st.integers(5, 55), field=st.sampled_from(["z", "m", "n"]))
    def test_rollback_property(self, step, field):
        plan = FaultPlan(
            [FaultSpec(kind="nan", step=step, block=0, field=field)]
        )
        report = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=60.0, fault_plan=plan,
        )
        assert report.complete
        assert report.rollbacks >= 1
        assert nonfinite_blocks(report.model.states) == []

    def test_unrecoverable_corruption_aborts_explicitly(self):
        # A fault at every step exhausts the rollback budget; the run
        # must end degraded, not hang or raise.
        plan = FaultPlan(
            [
                FaultSpec(kind="nan", step=s, block=0, field="z")
                for s in range(1, 40)
            ]
        )
        report = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=60.0, fault_plan=plan,
            max_rollbacks=3,
        )
        assert report.degraded
        assert any(
            ev.kind == "recovery_abort" for ev in report.recoveries
        )


class TestDeadlineDegradation:
    def test_supervisor_validation(self):
        from repro.errors import DeadlineError

        with pytest.raises(DeadlineError):
            DeadlineSupervisor(0.0)
        with pytest.raises(DeadlineError):
            DeadlineSupervisor(10.0, margin=1.5)

    def test_overrun_projection(self):
        sup = DeadlineSupervisor(100.0, margin=0.9)
        assert not sup.overrun(elapsed_s=10.0, steps_left=10, step_cost_s=1)
        assert sup.overrun(elapsed_s=10.0, steps_left=100, step_cost_s=1)

    def test_action_ladder(self):
        sup = DeadlineSupervisor(1.0)
        assert sup.next_action(True, True) == "drop_level"
        assert sup.next_action(False, True) == "coarsen_output"
        assert sup.next_action(False, False) == "finish_early"

    def test_tight_deadline_degrades_but_produces(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    kind="straggler", rank=0, step=5, span=100, factor=50.0
                )
            ]
        )
        report = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=60.0, fault_plan=plan,
            deadline_s=0.05,
        )
        assert report.degraded
        actions = [ev.action for ev in report.degradations]
        assert actions[0] == "drop_level"
        assert report.n_levels_final < report.n_levels_initial
        assert report.achieved_s > 0  # a forecast was still produced
        assert np.isfinite(report.max_eta)
        # Degradations must be attributable to the injected fault.
        assert any("straggler" in lbl for lbl in plan.triggered_labels())

    def test_generous_deadline_stays_complete(self):
        report = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=30.0, deadline_s=3600.0,
        )
        assert report.complete
        assert report.degradations == []
        assert report.n_levels_final == report.n_levels_initial

    def test_full_ladder_is_journaled_and_metered(self, tmp_path):
        """An impossible deadline walks the whole ladder — drop-level,
        coarsen-output, finish-early — and every DegradationEvent is
        both journaled (write-ahead, via the RunStore) and metered
        (``repro_degradations_total{action}``)."""
        from repro.obs.metrics import get_registry
        from repro.persist import RunStore
        from repro.resilience.deadline import DEGRADATION_ORDER

        store = RunStore(tmp_path / "run")
        reg = get_registry()
        before = {
            action: reg.counter(
                "repro_degradations_total", labels={"action": action}
            ).value
            for action in DEGRADATION_ORDER
        }
        report = run_resilient_forecast(
            nested_grid(), FlatBathymetry(50.0),
            config=SimulationConfig(dt=1.0, boundary="wall"),
            source=source(), horizon_s=120.0, deadline_s=1e-4,
            store=store,
        )
        assert report.degraded
        actions = [ev.action for ev in report.degradations]
        for action in DEGRADATION_ORDER:
            assert action in actions
        # Severity order: each action's first use follows the ladder.
        first_use = [actions.index(a) for a in DEGRADATION_ORDER]
        assert first_use == sorted(first_use)
        # Every event was journaled write-ahead, in the same order,
        # with the action and a human-readable detail.
        journaled = [
            ev for ev in store.events() if ev.get("event") == "degradation"
        ]
        assert [ev["action"] for ev in journaled] == actions
        assert all(ev.get("detail") for ev in journaled)
        assert all("deadline_s" in ev for ev in journaled)
        # Every event was metered, traced or not.
        for action in DEGRADATION_ORDER:
            delta = (
                reg.counter(
                    "repro_degradations_total", labels={"action": action}
                ).value
                - before[action]
            )
            assert delta == actions.count(action)
            assert delta >= 1


class TestDropFinestLevel:
    def test_state_carried_bitwise(self):
        model = make_model()
        model.run(5)
        before = state_arrays(model)
        degraded = drop_finest_level(model)
        assert degraded.grid.n_levels == 1
        assert degraded.time == model.time
        assert degraded.step_count == model.step_count
        for bid, st_d in degraded.states.items():
            z, m, n = before[bid]
            assert np.array_equal(st_d.z_old, z)
            assert np.array_equal(st_d.m_old, m)
            assert np.array_equal(st_d.n_old, n)
        assert np.array_equal(
            degraded.outputs[0].zmax, model.outputs[0].zmax
        )

    def test_cannot_drop_only_level(self):
        model = RTiModel(
            flat_grid(), FlatBathymetry(50.0),
            SimulationConfig(dt=1.0, boundary="wall"),
        )
        with pytest.raises(NumericalError, match="only grid level"):
            drop_finest_level(model)


class TestSimulatedClock:
    def test_straggler_slows_step_cost(self):
        model = make_model()
        clock = SimulatedClock()
        base = clock.step_cost_us(model, slowdown=1.0)
        slow = clock.step_cost_us(model, slowdown=4.0)
        assert slow > 2.0 * base

    def test_invalid_slowdown_rejected(self):
        from repro.hw import get_system
        from repro.hw.streams import StreamSimulator

        platform = get_system("squid-gpu").platform
        with pytest.raises(PlatformError):
            StreamSimulator(platform, n_queues=2, slowdown=0.0)

    def test_charge_step_advances_elapsed(self):
        model = make_model()
        clock = SimulatedClock()
        assert clock.elapsed_s == 0.0
        clock.charge_step(model, slowdown=1.0)
        assert clock.elapsed_s > 0.0
