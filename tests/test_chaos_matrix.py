"""Chaos matrix: seeded fault scenarios against the resilience layer.

The acceptance criterion for the resilience tentpole: across 20+ seeded
random fault scenarios, **every** run either completes or degrades
explicitly — zero hangs, zero unhandled exceptions — and the recorded
degradations/recoveries are attributable to the injected faults.

Two sweeps mirror the two injection surfaces:

* the **forecast surface** (NaN corruption + hardware stragglers)
  through :func:`run_resilient_forecast`, half of the scenarios under a
  tight deadline;
* the **transport surface** (rank crashes, message drops/delays)
  through :func:`resilient_run_distributed`, which must return the
  bitwise single-process answer no matter what the transport does.

Marked ``slow``: run with ``pytest -m slow``.
"""

import numpy as np
import pytest

from repro.core import RTiModel, SimulationConfig
from repro.fault import GaussianSource
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.par.decomposition import equal_cell_assignment
from repro.resilience import (
    FaultPlan,
    nonfinite_blocks,
    resilient_run_distributed,
    run_resilient_forecast,
)
from repro.validation import FlatBathymetry

pytestmark = pytest.mark.slow

HORIZON_S = 40.0
N_STEPS_DIST = 10


def nested_grid():
    return NestedGrid(
        [
            GridLevel(index=1, dx=300.0, blocks=[Block(0, 1, 0, 0, 30, 30)]),
            GridLevel(
                index=2, dx=100.0, blocks=[Block(1, 2, 30, 30, 30, 30)]
            ),
        ]
    )


def flat_grid():
    return NestedGrid(
        [
            GridLevel(
                index=1,
                dx=100.0,
                blocks=[
                    Block(0, 1, 0, 0, 24, 48),
                    Block(1, 1, 24, 0, 24, 48),
                ],
            )
        ]
    )


def source():
    return GaussianSource(x0=4500.0, y0=4500.0, amplitude=1.0, sigma=1500.0)


def config():
    return SimulationConfig(dt=1.0, boundary="wall")


# -- forecast surface: NaN corruption + stragglers (12 scenarios) --------

FORECAST_SEEDS = list(range(12))


@pytest.mark.parametrize("seed", FORECAST_SEEDS)
def test_forecast_surface_chaos(seed):
    plan = FaultPlan.random(
        seed,
        kinds=("nan", "straggler"),
        n_faults=4,
        n_ranks=1,
        n_steps=int(HORIZON_S),
        n_blocks=2,
    )
    deadline = 0.2 if seed % 2 else None  # half the matrix under pressure
    report = run_resilient_forecast(
        nested_grid(),
        FlatBathymetry(50.0),
        config=config(),
        source=source(),
        horizon_s=HORIZON_S,
        fault_plan=plan,
        deadline_s=deadline,
    )

    # Invariant 1: a report is always produced, complete or degraded.
    assert report.status in ("complete", "degraded")
    assert report.achieved_s <= HORIZON_S + 1e-9

    # Invariant 2: no corruption leaks into the products.
    assert nonfinite_blocks(report.model.states) == []
    assert np.isfinite(report.max_eta)
    assert np.isfinite(report.max_speed)

    # Invariant 3: every recovery/degradation is attributable.
    triggered = plan.triggered_labels()
    if report.rollbacks:
        assert any("nan" in lbl for lbl in triggered), (
            f"rollbacks without a triggered nan fault: {triggered}"
        )
    if report.degradations:
        assert deadline is not None, "degraded without a deadline"
    if report.degraded:
        assert (
            report.degradations
            or any(ev.kind == "recovery_abort" for ev in report.recoveries)
            or report.achieved_s < HORIZON_S
        )

    # Invariant 4: the report is honest about fidelity.
    if deadline is None:
        assert report.n_levels_final == report.n_levels_initial


# -- transport surface: crashes, drops, delays (8 scenarios) -------------

DIST_SEEDS = list(range(100, 108))


def reference_run():
    model = RTiModel(flat_grid(), FlatBathymetry(50.0), config())
    model.set_initial_condition(source())
    model.run(N_STEPS_DIST)
    return {
        bid: st.eta_interior().copy() for bid, st in model.states.items()
    }


@pytest.mark.parametrize("seed", DIST_SEEDS)
def test_transport_surface_chaos(seed):
    grid = flat_grid()
    plan = FaultPlan.random(
        seed,
        kinds=("rank_crash", "msg_drop", "msg_delay"),
        n_faults=3,
        n_ranks=2,
        n_steps=N_STEPS_DIST,
    )
    decomp = equal_cell_assignment(grid, 2, split_blocks=False)
    out, events = resilient_run_distributed(
        grid,
        FlatBathymetry(50.0),
        config(),
        decomp,
        source(),
        N_STEPS_DIST,
        fault_plan=plan,
        comm_timeout=0.8,
        backoff_s=0.01,
    )

    # Invariant 1: the physics survives the transport chaos bitwise.
    ref = reference_run()
    assert out.keys() == ref.keys()
    for bid in ref:
        assert np.array_equal(out[bid], ref[bid]), f"block {bid} diverged"

    # Invariant 2: recovery actions only in response to real faults.
    kinds = [ev.kind for ev in events]
    assert set(kinds) <= {"comm_retry", "fallback_single_process"}
    if events:
        assert any(
            f.kind in ("rank_crash", "msg_drop") for f in plan.triggered
        ), f"recovery events {kinds} without a fatal comm fault"
    # Delays alone must not trigger retries.
    fatal = [
        f for f in plan.triggered if f.kind in ("rank_crash", "msg_drop")
    ]
    if not fatal:
        assert kinds.count("fallback_single_process") == 0


# -- survival surface: phase-targeted crashes (10 scenarios) --------------
#
# The in-flight survival tentpole: a rank dies *inside* a specific
# communication phase — mid halo-exchange or mid checkpoint-replication
# — and the run must still complete within a wall-clock deadline via
# shrink or spare-rank respawn, bitwise identical to the failure-free
# reference.  Each seed varies the victim rank and how deep into the run
# (send-op count) the crash lands.

SURVIVE_N_STEPS = 16
SURVIVE_DEADLINE_S = 60.0
HALO_CRASH_SEEDS = list(range(200, 205))
CKPT_CRASH_SEEDS = list(range(300, 305))


def survive_grid():
    return NestedGrid(
        [
            GridLevel(
                index=1,
                dx=100.0,
                blocks=[
                    Block(0, 1, 0, 0, 16, 48),
                    Block(1, 1, 16, 0, 16, 48),
                    Block(2, 1, 32, 0, 16, 48),
                ],
            )
        ]
    )


def survive_reference():
    model = RTiModel(survive_grid(), FlatBathymetry(50.0), config())
    model.set_initial_condition(source())
    model.run(SURVIVE_N_STEPS)
    return {
        bid: st.eta_interior().copy() for bid, st in model.states.items()
    }


def _phase_crash_scenario(seed, phase):
    import random as _random
    import time as _time

    from repro.resilience import FaultSpec, SurvivalConfig
    from repro.resilience.survive import survivable_run_distributed

    rng = _random.Random(seed)
    grid = survive_grid()
    plan = FaultPlan(
        [
            FaultSpec(
                kind="rank_crash",
                rank=rng.randrange(3),
                phase=phase,
                # Vary how deep into the run the crash lands: each step
                # issues several sends per rank, so spreading the op
                # threshold over [0, 60) covers early/mid/late deaths.
                op=rng.randrange(0, 60),
            )
        ],
        seed=seed,
    )
    spares = seed % 2  # alternate respawn- and shrink-shaped recoveries
    decomp = equal_cell_assignment(grid, 3, split_blocks=False)
    t0 = _time.monotonic()
    eta, report = survivable_run_distributed(
        grid,
        FlatBathymetry(50.0),
        config(),
        decomp,
        source(),
        SURVIVE_N_STEPS,
        survival=SurvivalConfig(
            checkpoint_every=4, spare_ranks=spares, max_rank_failures=3
        ),
        fault_plan=plan,
        timeout=120.0,
        comm_timeout=2.0,
    )
    elapsed = _time.monotonic() - t0

    # Invariant 1: recovery is fast enough to matter operationally.
    assert elapsed < SURVIVE_DEADLINE_S, (
        f"seed {seed}: recovery took {elapsed:.1f}s"
    )

    # Invariant 2: the answer is bitwise the failure-free one.
    ref = survive_reference()
    assert eta.keys() == ref.keys()
    for bid in ref:
        assert np.array_equal(eta[bid], ref[bid]), f"block {bid} diverged"

    # Invariant 3: the report attributes the recovery to the fault.
    if plan.triggered:
        assert report.rank_failures >= 1
        assert (
            report.respawns + report.shrinks >= 1
            or report.breaker_tripped
        ), f"seed {seed}: crash fired but no recovery action recorded"
        if spares:
            assert report.respawns >= 1, (
                f"seed {seed}: spare available but not used"
            )
    else:
        # An op threshold past the run's total send count: clean run.
        assert report.rank_failures == 0
        assert len(report.incarnations) == 1


@pytest.mark.parametrize("seed", HALO_CRASH_SEEDS)
def test_crash_during_halo_exchange(seed):
    _phase_crash_scenario(seed, "halo")


@pytest.mark.parametrize("seed", CKPT_CRASH_SEEDS)
def test_crash_during_checkpoint_replication(seed):
    _phase_crash_scenario(seed, "ckpt")


# -- SDC surface: silent bit flips (20 scenarios) --------------------------
#
# The integrity tentpole's acceptance gate: across 20+ seeded bit-flip
# scenarios against state arrays, checkpoint buffers, and halo payloads,
# every injected corruption is either *corrected* (bitwise-identical
# final answer) or flagged with an explicit ``corrupted`` verdict —
# never a silent completion with a wrong answer.

SDC_FORECAST_SEEDS = list(range(400, 412))
SDC_HALO_SEEDS = list(range(500, 508))

_sdc_reference_cache: dict = {}


def sdc_forecast_reference():
    """Clean-run eta fields, integrity layer armed (seeded flips off)."""
    if "forecast" not in _sdc_reference_cache:
        report = run_resilient_forecast(
            nested_grid(),
            FlatBathymetry(50.0),
            config=config(),
            source=source(),
            horizon_s=HORIZON_S,
            integrity_every=1,
            scrub_every=8,
        )
        _sdc_reference_cache["forecast"] = {
            bid: st.eta_interior().copy()
            for bid, st in report.model.states.items()
        }
    return _sdc_reference_cache["forecast"]


@pytest.mark.parametrize("seed", SDC_FORECAST_SEEDS)
def test_sdc_forecast_surface(seed):
    from repro.resilience import INTEGRITY_VERDICTS

    plan = FaultPlan.random(
        seed,
        kinds=("bitflip",),
        n_faults=3,
        n_ranks=1,
        n_steps=int(HORIZON_S),
        n_blocks=2,
    )
    report = run_resilient_forecast(
        nested_grid(),
        FlatBathymetry(50.0),
        config=config(),
        source=source(),
        horizon_s=HORIZON_S,
        fault_plan=plan,
        integrity_every=1,
        scrub_every=8,
    )

    # Invariant 1: a report with an adjudicated verdict, always.
    assert report.status == "complete"
    assert report.integrity_verdict in INTEGRITY_VERDICTS

    # Invariant 2: every *triggered* state/checkpoint flip is seen.
    hit = [
        f for f in plan.triggered
        if f.kind == "bitflip" and f.target in ("state", "checkpoint")
    ]
    if hit:
        assert report.integrity_verdict != "clean", (
            f"seed {seed}: {len(hit)} flip(s) fired but verdict is clean"
        )

    # Invariant 3: zero silent completions.  Unless the run *declared*
    # itself corrupted, the answer must be bitwise the clean one.
    if report.integrity_verdict != "corrupted":
        ref = sdc_forecast_reference()
        out = {
            bid: st.eta_interior()
            for bid, st in report.model.states.items()
        }
        for bid in ref:
            assert np.array_equal(out[bid], ref[bid]), (
                f"seed {seed}: block {bid} differs under verdict "
                f"{report.integrity_verdict!r} — silent corruption"
            )

    # Invariant 4: corrections are attributable to injected flips.
    corrections = report.integrity["corrections"]
    if sum(corrections.values()) and not plan.triggered:
        raise AssertionError(
            f"seed {seed}: corrections {corrections} without a fault"
        )


@pytest.mark.parametrize("seed", SDC_HALO_SEEDS)
def test_sdc_halo_surface(seed):
    import random as _random

    from repro.par.driver import run_distributed
    from repro.resilience import FaultSpec, MessageIntegrity

    rng = _random.Random(seed)
    plan = FaultPlan(
        [
            FaultSpec(
                kind="bitflip",
                target="halo",
                rank=rng.randrange(2),
                op=rng.randrange(0, 24),
                bit=rng.randrange(0, 16),
            )
        ],
        seed=seed,
    )
    integrity = MessageIntegrity(plan=plan)
    grid = flat_grid()
    decomp = equal_cell_assignment(grid, 2, split_blocks=False)
    out = run_distributed(
        grid,
        FlatBathymetry(50.0),
        config(),
        decomp,
        source(),
        N_STEPS_DIST,
        integrity=integrity,
    )

    # Invariant 1: the wire flip never reaches the physics — the CRC
    # catches it and the retransmit copy restores the clean payload.
    ref = reference_run()
    assert out.keys() == ref.keys()
    for bid in ref:
        assert np.array_equal(out[bid], ref[bid]), (
            f"seed {seed}: block {bid} diverged through a halo flip"
        )

    # Invariant 2: a triggered flip is detected + corrected, a clean
    # run stays clean — no phantom detections.
    if plan.triggered:
        assert integrity.tracker.verdict == "corrected"
        assert integrity.tracker.retransmits >= 1
        assert integrity.tracker.detections.get("halo", 0) >= 1
    else:
        assert integrity.tracker.verdict == "clean"
        assert integrity.tracker.retransmits == 0
