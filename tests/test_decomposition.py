"""Tests for repro.par.decomposition."""

import pytest

from repro.errors import DecompositionError
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.par.decomposition import (
    Decomposition,
    RankWork,
    WorkItem,
    build_decomposition,
    decomposition_from_separators,
    equal_cell_assignment,
    ranks_per_level,
)
from repro.topo import build_kochi_grid, build_mini_kochi


def simple_grid():
    l1 = GridLevel(index=1, dx=90.0, blocks=[Block(0, 1, 0, 0, 12, 12)])
    l2 = GridLevel(
        index=2,
        dx=30.0,
        blocks=[
            Block(1, 2, 0, 0, 9, 9),
            Block(2, 2, 9, 0, 9, 9),
            Block(3, 2, 18, 0, 9, 9),
            Block(4, 2, 27, 0, 9, 9),
        ],
    )
    return NestedGrid([l1, l2])


class TestWorkItem:
    def test_whole_block(self):
        blk = Block(0, 1, 0, 0, 10, 8)
        it = WorkItem(blk)
        assert it.is_whole_block
        assert it.n_cells == 80

    def test_strip(self):
        blk = Block(0, 1, 0, 0, 10, 8)
        it = WorkItem(blk, 2, 5)
        assert not it.is_whole_block
        assert it.n_rows == 3
        assert it.n_cells == 30

    def test_bad_rows(self):
        blk = Block(0, 1, 0, 0, 10, 8)
        with pytest.raises(DecompositionError):
            WorkItem(blk, 5, 5)
        with pytest.raises(DecompositionError):
            WorkItem(blk, 0, 9)


class TestRanksPerLevel:
    def test_kochi_16_matches_paper(self):
        grid = build_kochi_grid()
        assert ranks_per_level(grid, 16) == [1, 1, 1, 3, 10]

    def test_minimum_one_per_level(self):
        grid = simple_grid()
        assert ranks_per_level(grid, 2) == [1, 1]

    def test_sum_is_total(self):
        grid = build_kochi_grid()
        for n in (5, 8, 16, 32, 64):
            assert sum(ranks_per_level(grid, n)) == n

    def test_too_few_ranks_raises(self):
        with pytest.raises(DecompositionError):
            ranks_per_level(simple_grid(), 1)


class TestEqualCellAssignment:
    def test_covers_every_cell_once(self):
        # Decomposition.__post_init__ validates exact coverage.
        d = equal_cell_assignment(simple_grid(), 3)
        assert d.n_ranks == 3
        assert sum(d.cells_per_rank()) == simple_grid().n_cells

    def test_split_blocks_balance(self):
        # One level, 12x12 block, split over 5 ranks by rows.
        grid = NestedGrid(
            [GridLevel(index=1, dx=90.0, blocks=[Block(0, 1, 0, 0, 12, 12)])]
        )
        d = equal_cell_assignment(grid, 5)
        cells = d.cells_per_rank()
        assert sum(cells) == 144
        assert max(cells) - min(cells) <= 12  # within one row

    def test_whole_block_mode(self):
        d = equal_cell_assignment(simple_grid(), 3, split_blocks=False)
        for rw in d.ranks:
            for it in rw.items:
                assert it.is_whole_block

    def test_consecutive_blocks_per_rank(self):
        d = equal_cell_assignment(build_kochi_grid(), 16, split_blocks=False)
        for rw in d.ranks:
            ids = [it.block.block_id for it in rw.items]
            assert ids == sorted(ids)
            assert ids == list(range(ids[0], ids[0] + len(ids)))

    def test_fewer_ranks_than_levels(self):
        d = equal_cell_assignment(simple_grid(), 1)
        assert d.n_ranks == 1
        assert d.ranks[0].n_cells == simple_grid().n_cells

    def test_whole_block_mode_fewer_ranks_than_levels(self):
        # The distributed driver needs owner_map() to work for any rank
        # count, including fewer ranks than grid levels (few-socket runs).
        grid = build_mini_kochi().grid
        for n in (2, 3, 4):
            d = equal_cell_assignment(grid, n, split_blocks=False)
            owner = d.owner_map()  # raises if anything is row-split
            assert set(owner) == {
                b.block_id for b in grid.all_blocks()
            }
            assert set(owner.values()) == set(range(n))

    def test_kochi_no_rank_spans_levels_at_16(self):
        grid = build_kochi_grid()
        d = equal_cell_assignment(grid, 16)
        for rw in d.ranks:
            levels = {it.block.level for it in rw.items}
            assert len(levels) == 1


class TestSeparators:
    def test_from_separators(self):
        grid = simple_grid()
        d = decomposition_from_separators(grid, {1: [], 2: [1, 3]})
        l2_ranks = [rw for rw in d.ranks if rw.level == 2]
        assert [rw.n_blocks for rw in l2_ranks] == [1, 2, 1]

    def test_empty_rank_rejected(self):
        with pytest.raises(DecompositionError):
            decomposition_from_separators(simple_grid(), {1: [], 2: [2, 2]})

    def test_unsorted_rejected(self):
        with pytest.raises(DecompositionError):
            decomposition_from_separators(simple_grid(), {1: [], 2: [3, 1]})


class TestDecompositionValidation:
    def test_missing_rows_detected(self):
        grid = simple_grid()
        blk = grid.block(0)
        ranks = (
            RankWork(0, 1, (WorkItem(blk, 0, 6),)),  # rows 6..12 missing
            RankWork(1, 2, tuple(WorkItem(b) for b in grid.level(2).blocks)),
        )
        with pytest.raises(DecompositionError):
            Decomposition(grid, ranks)

    def test_bad_rank_numbering(self):
        grid = simple_grid()
        ranks = (
            RankWork(1, 1, (WorkItem(grid.block(0)),)),
            RankWork(0, 2, tuple(WorkItem(b) for b in grid.level(2).blocks)),
        )
        with pytest.raises(DecompositionError):
            Decomposition(grid, ranks)

    def test_build_dispatcher(self):
        d = build_decomposition(simple_grid(), 2)
        assert d.n_ranks == 2
        with pytest.raises(DecompositionError):
            build_decomposition(simple_grid(), 2, policy="magic")
