"""Tests for repro.grid.block."""

import pytest

from repro.errors import GridError
from repro.grid.block import Block


def make(bid=0, level=1, gi0=0, gj0=0, nx=9, ny=6):
    return Block(bid, level, gi0, gj0, nx, ny)


class TestConstruction:
    def test_basic_properties(self):
        b = make(nx=9, ny=6, gi0=3, gj0=12)
        assert b.n_cells == 54
        assert b.gi1 == 12
        assert b.gj1 == 18

    def test_rejects_nonpositive_size(self):
        with pytest.raises(GridError):
            make(nx=0)
        with pytest.raises(GridError):
            make(ny=-3)

    def test_rejects_negative_origin(self):
        with pytest.raises(GridError):
            make(gi0=-1)

    def test_rejects_bad_level(self):
        with pytest.raises(GridError):
            make(level=0)

    def test_extent_physical(self):
        b = make(gi0=3, gj0=6, nx=9, ny=6)
        assert b.extent(10.0) == (30.0, 60.0, 120.0, 120.0)


class TestContainsAndOverlap:
    def test_contains_cell(self):
        b = make(gi0=3, gj0=3, nx=3, ny=3)
        assert b.contains_cell(3, 3)
        assert b.contains_cell(5, 5)
        assert not b.contains_cell(6, 3)
        assert not b.contains_cell(3, 2)

    def test_overlap_detection(self):
        a = make(0, gi0=0, gj0=0, nx=6, ny=6)
        b = make(1, gi0=3, gj0=3, nx=6, ny=6)
        c = make(2, gi0=6, gj0=0, nx=3, ny=3)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_overlap_requires_same_level(self):
        a = make(0, level=1)
        b = make(1, level=2)
        with pytest.raises(GridError):
            a.overlaps(b)


class TestTouches:
    def test_edge_neighbors(self):
        a = make(0, gi0=0, gj0=0, nx=6, ny=6)
        right = make(1, gi0=6, gj0=0, nx=3, ny=6)
        above = make(2, gi0=0, gj0=6, nx=6, ny=3)
        assert a.touches(right) and right.touches(a)
        assert a.touches(above)

    def test_corner_contact_is_not_touching(self):
        a = make(0, gi0=0, gj0=0, nx=3, ny=3)
        diag = make(1, gi0=3, gj0=3, nx=3, ny=3)
        assert not a.touches(diag)

    def test_gap_is_not_touching(self):
        a = make(0, gi0=0, gj0=0, nx=3, ny=3)
        far = make(1, gi0=9, gj0=0, nx=3, ny=3)
        assert not a.touches(far)

    def test_partial_edge_overlap_touches(self):
        a = make(0, gi0=0, gj0=0, nx=3, ny=9)
        b = make(1, gi0=3, gj0=6, nx=3, ny=9)
        assert a.touches(b)

    def test_different_levels_never_touch(self):
        a = make(0, level=1, gi0=0, gj0=0, nx=3, ny=3)
        b = make(1, level=2, gi0=3, gj0=0, nx=3, ny=3)
        assert not a.touches(b)


class TestParentFootprint:
    def test_aligned_footprint(self):
        b = make(gi0=9, gj0=6, nx=9, ny=12)
        assert b.parent_footprint(3) == (3, 2, 6, 6)

    def test_misaligned_raises(self):
        with pytest.raises(GridError):
            make(gi0=1).parent_footprint(3)
        with pytest.raises(GridError):
            make(nx=10).parent_footprint(3)


class TestSplitRows:
    def test_even_split(self):
        parts = make(ny=6).split_rows(2)
        assert [p.ny for p in parts] == [3, 3]
        assert parts[0].gj0 == 0 and parts[1].gj0 == 3

    def test_remainder_goes_to_early_parts(self):
        parts = make(ny=7, nx=3).split_rows(3)
        assert [p.ny for p in parts] == [3, 2, 2]
        assert sum(p.n_cells for p in parts) == 21

    def test_strips_cover_block_exactly(self):
        b = make(gj0=12, ny=10, nx=6)
        parts = b.split_rows(4)
        cursor = b.gj0
        for p in parts:
            assert p.gj0 == cursor
            assert p.gi0 == b.gi0 and p.nx == b.nx
            cursor = p.gj1
        assert cursor == b.gj1

    def test_too_many_parts_raises(self):
        with pytest.raises(GridError):
            make(ny=3).split_rows(4)
