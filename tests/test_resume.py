"""End-to-end kill-and-resume tests (repro.persist.runner).

The tentpole guarantee: a forecast killed by SIGTERM mid-run and
resumed with ``repro resume`` reaches a final state bitwise identical
to an uninterrupted run — including the incrementally streamed gauge
series — and a torn newest snapshot silently falls back to the
previous valid one.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.cli import main
from repro.core import RTiModel
from repro.errors import PersistError
from repro.persist import (
    JOURNAL_VERSION,
    SCHEMA_VERSION,
    ProductStreamer,
    RunStore,
    build_scenario,
    grid_fingerprint,
    resume_run,
    start_run,
)
from tests.test_persist import (
    assert_models_bitwise_equal,
    tiny_model,
)

SPEC = {
    "grid": {
        "ratio": 3,
        "levels": [
            {"index": 1, "dx": 300.0, "blocks": [[0, 1, 0, 0, 12, 12]]},
            {"index": 2, "dx": 100.0, "blocks": [[1, 2, 9, 9, 12, 12]]},
        ],
    },
    "bathymetry": {"type": "flat", "depth": 50.0},
    "dt": 1.0,
    "n_steps": 30,
    "source": {
        "type": "gaussian",
        "x0": 1_800.0,
        "y0": 1_800.0,
        "amplitude": 1.0,
        "sigma": 600.0,
    },
}
CHECKPOINT_EVERY = 5


def run_until_killed(rundir, kill_at_step: int) -> RunStore:
    """Start SPEC persistently and SIGTERM our own process mid-run.

    Mirrors :func:`repro.persist.runner.start_run` exactly, but injects
    the kill from the step callback; the installed interrupt guard
    captures a final snapshot, journals the interruption, and unwinds
    with :class:`KeyboardInterrupt` — the same crash surface a real
    ``kill <pid>`` produces.
    """
    built = build_scenario(SPEC)
    store = RunStore(rundir, create=True)
    model = RTiModel(built.grid, built.bathymetry, built.config)
    model.set_initial_condition(built.source)
    store.record_event(
        "run_start",
        journal_version=JOURNAL_VERSION,
        schema_version=SCHEMA_VERSION,
        scenario=built.spec,
        n_steps=built.n_steps,
        checkpoint_every=CHECKPOINT_EVERY,
        eta_every=0,
        grid_fingerprint=grid_fingerprint(built.grid, built.config.dtype),
    )
    streamer = ProductStreamer(store, model)

    def kill_switch(m):
        streamer.after_step(m)
        if m.step_count == kill_at_step:
            os.kill(os.getpid(), signal.SIGTERM)

    with pytest.raises(KeyboardInterrupt):
        model.run(
            built.n_steps,
            callback=kill_switch,
            callback_every=1,
            store=store,
            checkpoint_every=CHECKPOINT_EVERY,
        )
    return store


def reference_run() -> tuple[RTiModel, list[str]]:
    """The uninterrupted ground truth: final model + gauge csv lines."""
    built = build_scenario(SPEC)
    model = RTiModel(built.grid, built.bathymetry, built.config)
    model.set_initial_condition(built.source)

    class _Sink:
        def __init__(self):
            import tempfile

            self.dir = tempfile.mkdtemp()
            self.store = RunStore(self.dir, create=True)

    sink = _Sink()
    streamer = ProductStreamer(sink.store, model)
    model.run(built.n_steps, callback=streamer.after_step, callback_every=1)
    lines = streamer.gauge_path.read_text().splitlines()
    return model, lines


class TestKillAndResume:
    def test_sigterm_capture_then_resume_is_bitwise(self, tmp_path):
        store = run_until_killed(tmp_path / "run", kill_at_step=17)

        events = [ev["event"] for ev in store.events()]
        assert "interrupted" in events
        interrupted = store.first_event("interrupted")
        assert interrupted["signal"] == "SIGTERM"
        assert interrupted["snapshotted"] is True
        assert store.status() == "incomplete"

        resumed = resume_run(tmp_path / "run")
        reference, ref_lines = reference_run()
        assert_models_bitwise_equal(reference, resumed)

        got_lines = (
            store.products_dir / "gauges.csv"
        ).read_text().splitlines()
        assert got_lines == ref_lines
        assert store.status() == "complete"

    def test_resume_from_older_snapshot_without_signal_capture(self, tmp_path):
        # A hard crash (SIGKILL, power loss) leaves no final snapshot —
        # only the periodic ones.  Simulate by dropping the signal-capture
        # snapshot and resuming from the last periodic checkpoint.
        store = run_until_killed(tmp_path / "run", kill_at_step=17)
        newest = store.snapshot_paths()[-1]
        manifest = json.loads((newest / "manifest.json").read_text())
        if manifest["step"] == 17:  # the signal-capture snapshot
            import shutil

            shutil.rmtree(newest)
        resumed = resume_run(tmp_path / "run")
        reference, ref_lines = reference_run()
        assert_models_bitwise_equal(reference, resumed)
        got = (store.products_dir / "gauges.csv").read_text().splitlines()
        assert got == ref_lines

    def test_torn_newest_snapshot_falls_back(self, tmp_path):
        store = run_until_killed(tmp_path / "run", kill_at_step=17)
        newest = store.snapshot_paths()[-1]
        victim = newest / "level_2.npz"
        victim.write_bytes(victim.read_bytes()[:100])  # torn write

        warnings: list[str] = []
        resumed = resume_run(tmp_path / "run", echo=warnings.append)
        assert any(
            "skipping invalid snapshot" in msg and newest.name in msg
            for msg in warnings
        )
        reference, _ = reference_run()
        assert_models_bitwise_equal(reference, resumed)

    def test_all_snapshots_corrupt_restarts_from_zero(self, tmp_path):
        store = run_until_killed(tmp_path / "run", kill_at_step=17)
        for path in store.snapshot_paths():
            (path / "manifest.json").write_text("garbage")
        messages: list[str] = []
        resumed = resume_run(tmp_path / "run", echo=messages.append)
        assert any("restarting from step 0" in m for m in messages)
        reference, _ = reference_run()
        assert_models_bitwise_equal(reference, resumed)

    def test_partial_products_survive_crash(self, tmp_path):
        store = run_until_killed(tmp_path / "run", kill_at_step=17)
        lines = (store.products_dir / "gauges.csv").read_text().splitlines()
        assert lines[0].startswith("time,")
        assert len(lines) == 1 + 17  # header + one row per completed step

    def test_resume_requires_interrupted_run(self, tmp_path):
        with pytest.raises(PersistError, match="does not exist"):
            resume_run(tmp_path / "missing")
        start_run(tmp_path / "done", SPEC, checkpoint_every=10)
        with pytest.raises(PersistError, match="already completed"):
            resume_run(tmp_path / "done")

    def test_journal_records_full_lifecycle(self, tmp_path):
        store = run_until_killed(tmp_path / "run", kill_at_step=17)
        resume_run(tmp_path / "run")
        events = [ev["event"] for ev in store.events()]
        assert events[0] == "run_start"
        assert "interrupted" in events
        assert "resume" in events
        assert events[-1] == "complete"
        resume = store.first_event("resume")
        assert resume["from_step"] in (15, 17)  # snapshot it restored


class TestStartRun:
    def test_start_run_completes_and_matches_reference(self, tmp_path):
        model = start_run(tmp_path / "run", SPEC, checkpoint_every=10)
        reference, ref_lines = reference_run()
        assert_models_bitwise_equal(reference, model)
        store = RunStore(tmp_path / "run", create=False)
        got = (store.products_dir / "gauges.csv").read_text().splitlines()
        assert got == ref_lines

    def test_start_run_refuses_occupied_rundir(self, tmp_path):
        start_run(tmp_path / "run", SPEC, checkpoint_every=10)
        with pytest.raises(PersistError, match="already holds a run"):
            start_run(tmp_path / "run", SPEC)

    def test_eta_dumps_streamed_on_cadence(self, tmp_path):
        start_run(
            tmp_path / "run", SPEC, checkpoint_every=10, eta_every=10
        )
        eta_dir = tmp_path / "run" / "products" / "eta"
        dumps = sorted(p.name for p in eta_dir.glob("eta_step_*.npz"))
        assert dumps == [
            "eta_step_00000010.npz",
            "eta_step_00000020.npz",
            "eta_step_00000030.npz",
        ]
        with np.load(eta_dir / dumps[0]) as npz:
            assert float(npz["time"]) == pytest.approx(10.0)
            assert "b0_eta" in npz


class TestResumeCli:
    def test_forecast_rundir_then_resume_command(self, tmp_path, capsys):
        store = run_until_killed(tmp_path / "run", kill_at_step=17)
        assert main(["resume", str(tmp_path / "run")]) == 0
        out = capsys.readouterr().out
        assert "restored snapshot" in out
        assert "run complete" in out
        assert "max water level" in out
        assert store.status() == "complete"

    def test_resume_command_reports_missing_run(self, tmp_path, capsys):
        assert main(["resume", str(tmp_path / "missing")]) == 1
        assert "error:" in capsys.readouterr().out

    def test_forecast_resume_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["forecast", "--rundir", "d", "--resume",
             "--checkpoint-every", "7"]
        )
        assert args.rundir == "d"
        assert args.resume is True
        assert args.checkpoint_every == 7
