"""Tests for the load-balance machinery (repro.balance)."""

import numpy as np
import pytest

from repro.balance import (
    LinearPerfModel,
    fit_linear_model,
    measure_kernel_runtimes,
    optimize_separators,
    score_max,
    score_variance,
)
from repro.balance.apply import fit_platform_model, optimized_decomposition
from repro.balance.hillclimb import _rank_times
from repro.balance.perfmodel import (
    PAPER_INTERCEPT_US,
    PAPER_R2,
    PAPER_SLOPE_US_PER_CELL,
)
from repro.errors import ConfigurationError, DecompositionError
from repro.hw import get_platform
from repro.topo import build_kochi_grid


class TestLinearPerfModel:
    def test_eq5_rank_time_is_sum(self):
        m = LinearPerfModel(1e-4, 46.2)
        # T = sum_i (slope * b_i + intercept), Eq. 5.
        assert m.rank_time_us([100_000, 200_000]) == pytest.approx(
            1e-4 * 300_000 + 2 * 46.2
        )

    def test_invalid_slope(self):
        with pytest.raises(ConfigurationError):
            LinearPerfModel(-1.0, 0.0)


class TestMicrobenchmarkFit:
    def test_fit_recovers_exact_line(self):
        xs = [10_000.0, 50_000.0, 90_000.0]
        ys = [2e-4 * x + 30.0 for x in xs]
        m = fit_linear_model(xs, ys)
        assert m.slope_us_per_cell == pytest.approx(2e-4)
        assert m.intercept_us == pytest.approx(30.0)
        assert m.r2 == pytest.approx(1.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            fit_linear_model([1.0], [1.0])

    def test_a100_microbench_matches_paper_shape(self):
        """Fig. 5: linear fit with a ~46 us intercept and high R^2.

        The cache-resident measurement reproduces the paper's published
        coefficients (slope 1.09e-4 us/cell, intercept 46.2 us).
        """
        p = get_platform("a100-sxm4")
        cells = [50_000, 200_000, 500_000, 1_000_000, 1_500_000, 2_000_000]
        times = measure_kernel_runtimes(p, cells, traffic_multiplier=1.0)
        m = fit_linear_model(cells, times)
        assert m.r2 > PAPER_R2
        assert m.intercept_us == pytest.approx(PAPER_INTERCEPT_US, rel=0.2)
        assert m.slope_us_per_cell == pytest.approx(
            PAPER_SLOPE_US_PER_CELL, rel=0.25
        )

    def test_production_model_consistent_units(self):
        p = get_platform("a100-sxm4")
        m = fit_platform_model(p)
        # Production traffic is `traffic_multiplier` times the
        # cache-resident minimum; same intercept.
        assert m.slope_us_per_cell > PAPER_SLOPE_US_PER_CELL
        assert m.intercept_us == pytest.approx(PAPER_INTERCEPT_US, rel=0.15)


class TestHillClimb:
    def cells(self):
        rng = np.random.default_rng(0)
        return list(rng.integers(50_000, 1_500_000, size=40))

    def test_improves_over_random_init(self):
        cells = self.cells()
        model = LinearPerfModel(7e-4, 40.0)
        seps = optimize_separators(cells, 8, model, iterations=2000, seed=1)
        t = _rank_times(cells, seps, model)
        # Any valid split has max >= total/n; optimized must be within 2x.
        lower = model.rank_time_us(cells) / 8
        assert score_max(t) < 2.0 * lower

    def test_beats_naive_equal_cells_with_overheads(self):
        # When the per-kernel intercept matters, the optimizer trades
        # cells for block count (the paper's point).
        cells = [50_000] * 20 + [1_000_000]
        model = LinearPerfModel(1e-4, 100.0)
        seps = optimize_separators(cells, 3, model, iterations=3000, seed=0)
        t = _rank_times(cells, seps, model)
        # Equal-cells would put the 1M block alone (max=200) and the 20
        # small ones on two ranks (max=1100); optimizer must do better
        # than the worst naive choice.
        assert score_max(t) <= 1100.0

    def test_deterministic_in_seed(self):
        cells = self.cells()
        model = LinearPerfModel(7e-4, 40.0)
        a = optimize_separators(cells, 5, model, seed=3)
        b = optimize_separators(cells, 5, model, seed=3)
        assert a == b

    def test_single_rank_no_separators(self):
        assert optimize_separators([1, 2, 3], 1, LinearPerfModel(1.0, 0.0)) == []

    def test_too_many_ranks(self):
        with pytest.raises(DecompositionError):
            optimize_separators([1, 2], 3, LinearPerfModel(1.0, 0.0))

    def test_two_phase_not_worse_than_max_only(self):
        cells = self.cells()
        model = LinearPerfModel(7e-4, 40.0)
        two = optimize_separators(
            cells, 8, model, iterations=2000, seed=0, two_phase=True
        )
        max_only = optimize_separators(
            cells, 8, model, iterations=2000, seed=0, two_phase=False
        )
        assert score_max(_rank_times(cells, two, model)) <= 1.15 * score_max(
            _rank_times(cells, max_only, model)
        )

    def test_scores(self):
        t = np.array([1.0, 3.0])
        assert score_variance(t) == pytest.approx(1.0)
        assert score_max(t) == 3.0


class TestOptimizedDecomposition:
    def test_valid_and_complete(self):
        grid = build_kochi_grid()
        p = get_platform("a100-sxm4")
        d = optimized_decomposition(grid, 16, p, iterations=500)
        assert d.n_ranks == 16
        assert sum(d.cells_per_rank()) == grid.n_cells

    def test_reduces_model_makespan_vs_block_granular_baseline(self):
        from repro.par.decomposition import equal_cell_assignment

        grid = build_kochi_grid()
        p = get_platform("a100-sxm4")
        model = fit_platform_model(p)
        base = equal_cell_assignment(grid, 16, split_blocks=False)
        opt = optimized_decomposition(grid, 16, p, model=model)

        def model_max(d):
            return max(
                model.rank_time_us([it.n_cells for it in rw.items])
                for rw in d.ranks
            )

        assert model_max(opt) <= model_max(base)
