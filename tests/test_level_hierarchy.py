"""Tests for repro.grid.level and repro.grid.hierarchy."""

import pytest

from repro.errors import GridError, NestingError
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel


def lvl(index, dx, blocks):
    return GridLevel(index=index, dx=dx, blocks=blocks)


class TestGridLevel:
    def test_counts(self):
        level = lvl(1, 90.0, [Block(0, 1, 0, 0, 6, 6), Block(1, 1, 6, 0, 3, 6)])
        assert level.n_blocks == 2
        assert level.n_cells == 54

    def test_rejects_duplicate_ids(self):
        with pytest.raises(GridError):
            lvl(1, 90.0, [Block(0, 1, 0, 0, 3, 3), Block(0, 1, 3, 0, 3, 3)])

    def test_rejects_overlapping_blocks(self):
        with pytest.raises(GridError):
            lvl(1, 90.0, [Block(0, 1, 0, 0, 6, 6), Block(1, 1, 3, 3, 6, 6)])

    def test_rejects_wrong_level_tag(self):
        with pytest.raises(GridError):
            lvl(1, 90.0, [Block(0, 2, 0, 0, 3, 3)])

    def test_rejects_bad_dx(self):
        with pytest.raises(GridError):
            lvl(1, -1.0, [])

    def test_covering_block(self):
        a = Block(0, 1, 0, 0, 6, 6)
        level = lvl(1, 90.0, [a])
        assert level.covering_block(2, 2) is a
        assert level.covering_block(7, 2) is None

    def test_covers_range_full(self):
        level = lvl(1, 90.0, [Block(0, 1, 0, 0, 6, 6), Block(1, 1, 6, 0, 6, 6)])
        assert level.covers_range(0, 0, 12, 6)
        assert level.covers_range(3, 1, 9, 5)

    def test_covers_range_with_hole(self):
        level = lvl(1, 90.0, [Block(0, 1, 0, 0, 6, 6), Block(1, 1, 9, 0, 3, 6)])
        assert not level.covers_range(0, 0, 12, 6)
        assert level.covers_range(9, 0, 12, 6)

    def test_neighbor_pairs(self):
        a = Block(0, 1, 0, 0, 6, 6)
        b = Block(1, 1, 6, 0, 6, 6)
        c = Block(2, 1, 15, 0, 3, 3)
        pairs = lvl(1, 90.0, [a, b, c]).neighbor_pairs()
        assert len(pairs) == 1
        assert {pairs[0][0].block_id, pairs[0][1].block_id} == {0, 1}


def two_level_grid():
    parent = GridLevel(index=1, dx=90.0, blocks=[Block(0, 1, 0, 0, 12, 12)])
    child = GridLevel(index=2, dx=30.0, blocks=[Block(1, 2, 9, 9, 12, 12)])
    return NestedGrid([parent, child])


class TestNestedGrid:
    def test_valid_two_level(self):
        g = two_level_grid()
        assert g.n_levels == 2
        assert g.n_blocks == 2
        assert g.n_cells == 144 + 144

    def test_rejects_wrong_ratio(self):
        parent = GridLevel(index=1, dx=90.0, blocks=[Block(0, 1, 0, 0, 12, 12)])
        child = GridLevel(index=2, dx=45.0, blocks=[Block(1, 2, 0, 0, 6, 6)])
        with pytest.raises(NestingError):
            NestedGrid([parent, child])

    def test_rejects_child_outside_parent(self):
        parent = GridLevel(index=1, dx=90.0, blocks=[Block(0, 1, 0, 0, 6, 6)])
        # Child footprint (0,0)-(8,8) exceeds the 6x6 parent.
        child = GridLevel(index=2, dx=30.0, blocks=[Block(1, 2, 0, 0, 24, 24)])
        with pytest.raises(NestingError):
            NestedGrid([parent, child])

    def test_rejects_misaligned_child(self):
        parent = GridLevel(index=1, dx=90.0, blocks=[Block(0, 1, 0, 0, 12, 12)])
        child = GridLevel(index=2, dx=30.0, blocks=[Block(1, 2, 1, 0, 12, 12)])
        with pytest.raises(NestingError):
            NestedGrid([parent, child])

    def test_rejects_nonconsecutive_levels(self):
        l1 = GridLevel(index=1, dx=90.0, blocks=[Block(0, 1, 0, 0, 12, 12)])
        l3 = GridLevel(index=3, dx=30.0, blocks=[Block(1, 3, 0, 0, 6, 6)])
        with pytest.raises(GridError):
            NestedGrid([l1, l3])

    def test_rejects_reused_block_ids_across_levels(self):
        parent = GridLevel(index=1, dx=90.0, blocks=[Block(0, 1, 0, 0, 12, 12)])
        child = GridLevel(index=2, dx=30.0, blocks=[Block(0, 2, 9, 9, 12, 12)])
        with pytest.raises(GridError):
            NestedGrid([parent, child])

    def test_parent_and_child_links(self):
        g = two_level_grid()
        child = g.block(1)
        parents = g.parent_blocks_of(child)
        assert [p.block_id for p in parents] == [0]
        children = g.child_blocks_of(g.block(0))
        assert [c.block_id for c in children] == [1]

    def test_level_one_has_no_parents(self):
        g = two_level_grid()
        assert g.parent_blocks_of(g.block(0)) == []

    def test_child_spanning_two_parents(self):
        parent = GridLevel(
            index=1,
            dx=90.0,
            blocks=[Block(0, 1, 0, 0, 6, 6), Block(1, 1, 6, 0, 6, 6)],
        )
        child = GridLevel(index=2, dx=30.0, blocks=[Block(2, 2, 9, 3, 18, 9)])
        g = NestedGrid([parent, child])
        assert {p.block_id for p in g.parent_blocks_of(g.block(2))} == {0, 1}

    def test_block_lookup_missing(self):
        with pytest.raises(GridError):
            two_level_grid().block(99)

    def test_level_lookup_bounds(self):
        g = two_level_grid()
        with pytest.raises(GridError):
            g.level(0)
        with pytest.raises(GridError):
            g.level(3)

    def test_summary_mentions_totals(self):
        text = two_level_grid().summary()
        assert "Total" in text
        assert "288" in text
