"""Tests for the NLMASS and NLMNT2 kernels (repro.core.mass/momentum)."""

import numpy as np
import pytest

from repro.constants import GRAVITY
from repro.core.mass import nlmass
from repro.core.momentum import momentum_core, nlmnt2
from repro.grid.staggered import (
    NGHOST,
    eta_shape,
    flux_m_shape,
    flux_n_shape,
    interior,
)

G = NGHOST


def fields(ny=6, nx=8, depth=100.0):
    z = np.zeros(eta_shape(ny, nx))
    m = np.zeros(flux_m_shape(ny, nx))
    n = np.zeros(flux_n_shape(ny, nx))
    h = np.full(eta_shape(ny, nx), depth)
    return z, m, n, h


class TestNlmass:
    def test_rest_state_stays_at_rest(self):
        z, m, n, h = fields()
        out = np.empty_like(z)
        nlmass(z, m, n, h, 0.1, 10.0, out=out)
        assert np.all(out == 0.0)

    def test_divergence_lowers_level(self):
        ny, nx = 4, 4
        z, m, n, h = fields(ny, nx)
        # Uniform positive M: flux difference zero inside, but set a
        # converging pattern on one cell.
        m[G + 1, G + 2] = 1.0  # left face of cell (1,2): inflow
        out = np.empty_like(z)
        nlmass(z, m, n, h, dt=2.0, dx=10.0, out=out)
        zi = out[interior(ny, nx)]
        # Cell (1,2) loses (M_right - M_left) = -1 -> gains level.
        assert zi[1, 2] == pytest.approx(2.0 / 10.0)
        # Cell (1,1) has M_right = 1 -> loses level.
        assert zi[1, 1] == pytest.approx(-2.0 / 10.0)

    def test_mass_conserving_in_closed_box(self):
        ny, nx = 6, 6
        z, m, n, h = fields(ny, nx)
        rng = np.random.default_rng(0)
        # Random interior fluxes, zero on the box edges.
        m[G : G + ny, G + 1 : G + nx] = rng.normal(0, 1, (ny, nx - 1))
        n[G + 1 : G + ny, G : G + nx] = rng.normal(0, 1, (ny - 1, nx))
        out = np.empty_like(z)
        nlmass(z, m, n, h, 0.05, 10.0, out=out)
        assert out[interior(ny, nx)].sum() == pytest.approx(0.0, abs=1e-12)

    def test_dry_clamp(self):
        ny, nx = 4, 4
        z, m, n, h = fields(ny, nx, depth=0.05)
        m[G + 1, G + 2] = 1.0  # strong outflow from cell (1,1)
        out = np.empty_like(z)
        nlmass(z, m, n, h, dt=1.0, dx=10.0, out=out)
        zi = out[interior(ny, nx)]
        # Cell (1,1) would drop to -0.1 < -h: clamped to ground (-0.05).
        assert zi[1, 1] == pytest.approx(-0.05)

    def test_ghosts_copied_from_old(self):
        z, m, n, h = fields()
        z[0, 0] = 7.0
        out = np.empty_like(z)
        nlmass(z, m, n, h, 0.1, 10.0, out=out)
        assert out[0, 0] == 7.0


class TestMomentum:
    def test_rest_state_no_flux(self):
        z, m, n, h = fields()
        out_m = np.empty_like(m)
        out_n = np.empty_like(n)
        nlmnt2(z, m, n, h, 0.1, 10.0, 0.025, out_m=out_m, out_n=out_n)
        assert np.all(out_m[interior(6, 8, G)[0], :] == 0.0)
        assert np.all(out_n == 0.0)

    def test_pressure_gradient_drives_flow(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx, depth=100.0)
        # Water level drops along +x: flow should accelerate in +x.
        for i in range(z.shape[1]):
            z[:, i] = 1.0 - 0.01 * i
        out_m = np.empty_like(m)
        out_n = np.empty_like(n)
        nlmnt2(z, m, n, h, dt=0.1, dx=10.0, manning=0.0, out_m=out_m, out_n=out_n)
        inner = out_m[G : G + ny, G + 1 : G + nx]
        assert np.all(inner > 0.0)
        # Check M = -g D_face dt dz/dx with D_face = h + mean(z_L, z_R).
        d_face = 100.0 + 0.5 * (z[G + 1, G + 1] + z[G + 1, G + 2])
        expected = GRAVITY * d_face * 0.1 * (0.01 / 10.0)
        assert inner[1, 1] == pytest.approx(expected, rel=1e-6)

    def test_symmetry_xy(self):
        # The N update must mirror the M update under transposition.
        ny = nx = 6
        rng = np.random.default_rng(1)
        z, m, n, h = fields(ny, nx)
        z += rng.normal(0, 0.1, z.shape)
        out_m = np.empty_like(m)
        out_n = np.empty_like(n)
        nlmnt2(z, m, n, h, 0.1, 10.0, 0.025, out_m=out_m, out_n=out_n)
        # Transposed problem.
        zt = z.T.copy()
        ht = h.T.copy()
        out_m2 = np.empty_like(n.T).copy()
        out_n2 = np.empty_like(m.T).copy()
        nlmnt2(zt, n.T.copy(), m.T.copy(), ht, 0.1, 10.0, 0.025,
               out_m=out_m2, out_n=out_n2)
        assert np.allclose(out_n.T, out_m2)
        assert np.allclose(out_m.T, out_n2)

    def test_friction_reduces_flux(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx, depth=1.0)  # shallow -> strong friction
        m[...] = 0.5
        out_nofric = np.empty_like(m)
        out_fric = np.empty_like(m)
        dummy_n = np.empty_like(n)
        nlmnt2(z, m, n, h, 0.5, 10.0, 0.0, out_m=out_nofric, out_n=dummy_n)
        nlmnt2(z, m, n, h, 0.5, 10.0, 0.05, out_m=out_fric, out_n=dummy_n)
        sl = (slice(G, G + ny), slice(G + 1, G + nx))
        assert np.all(np.abs(out_fric[sl]) < np.abs(out_nofric[sl]))

    def test_closed_face_between_dry_cells(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx, depth=-5.0)  # all land
        z[...] = 5.0  # ground level
        m[...] = 1.0  # spurious flux must be zeroed
        out_m = np.empty_like(m)
        out_n = np.empty_like(n)
        nlmnt2(z, m, n, h, 0.1, 10.0, 0.025, out_m=out_m, out_n=out_n)
        assert np.all(out_m[G : G + ny, G : G + nx + 1] == 0.0)

    def test_overflow_face_opens_toward_lower_land(self):
        ny, nx = 4, 4
        z, m, n, h = fields(ny, nx, depth=-1.0)  # land, 1 m elevation
        h[:, : G + 2] = 10.0  # left half wet, 10 m deep
        z[...] = np.where(h < 0, 1.0, 0.0)
        # Raise water above the land elevation on the wet side.
        z[:, : G + 2] = np.where(h[:, : G + 2] > 0, 2.0, z[:, : G + 2])
        out_m = np.empty_like(m)
        out_n = np.empty_like(n)
        nlmnt2(z, m, n, h, 0.1, 10.0, 0.0, out_m=out_m, out_n=out_n)
        # The face between wet column (G+1) and dry column (G+2) must
        # carry positive (landward) flux: z_wet=2 > -h_land=1.
        face = out_m[G + 1, G + 2]
        assert face > 0.0

    def test_velocity_cap(self):
        ny, nx = 4, 6
        z, m, n, h = fields(ny, nx, depth=0.5)
        # Huge gradient on thin water.
        z[:, : z.shape[1] // 2] = 5.0
        out_m = np.empty_like(m)
        out_n = np.empty_like(n)
        nlmnt2(z, m, n, h, 1.0, 10.0, 0.0, out_m=out_m, out_n=out_n,
               velocity_cap=20.0)
        # |M| <= cap * D_face; D_face <= 5.5+0.5 here.
        assert np.abs(out_m).max() <= 20.0 * 6.0 + 1e-9

    def test_linear_mode_drops_advection(self):
        ny, nx = 6, 6
        rng = np.random.default_rng(2)
        z, m, n, h = fields(ny, nx)
        z += rng.normal(0, 0.01, z.shape)
        m += rng.normal(0, 0.5, m.shape)
        out_lin = np.empty_like(m)
        out_nl = np.empty_like(m)
        dummy = np.empty_like(n)
        nlmnt2(z, m, n, h, 0.1, 10.0, 0.0, out_m=out_lin, out_n=dummy,
               nonlinear=False)
        nlmnt2(z, m, n, h, 0.1, 10.0, 0.0, out_m=out_nl, out_n=dummy,
               nonlinear=True)
        assert not np.allclose(out_lin, out_nl)
