"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.balance import LinearPerfModel, optimize_separators
from repro.balance.hillclimb import _rank_times
from repro.core.mass import nlmass
from repro.core.momentum import nlmnt2
from repro.grid.block import Block
from repro.grid.cfl import cfl_time_step, check_cfl
from repro.grid.staggered import eta_shape, flux_m_shape, flux_n_shape, interior
from repro.par.decomposition import equal_cell_assignment
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.xchg.offsets import (
    build_offset_table,
    pack_irregular_naive,
    pack_irregular_offsets,
)
from repro.xchg.packing import (
    pack_boundary_naive,
    pack_boundary_offsets,
    unpack_boundary_offsets,
)

# ---------------------------------------------------------------------------
# Packing equivalence (Listings 3 vs 4, 5 vs 6)
# ---------------------------------------------------------------------------

region_strategy = st.tuples(
    st.integers(0, 5), st.integers(1, 6), st.integers(0, 5), st.integers(1, 6)
)


@given(
    seed=st.integers(0, 2**32 - 1),
    r=region_strategy,
    n_arrays=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_pack_naive_equals_offsets(seed, r, n_arrays):
    j0, jn, i0, in_ = r
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(0, 1, (12, 12)) for _ in range(n_arrays)]
    region = (slice(j0, j0 + jn), slice(i0, i0 + in_))
    assert np.array_equal(
        pack_boundary_naive(arrays, region),
        pack_boundary_offsets(arrays, region),
    )


@given(seed=st.integers(0, 2**32 - 1), r=region_strategy)
@settings(max_examples=30, deadline=None)
def test_pack_unpack_roundtrip(seed, r):
    j0, jn, i0, in_ = r
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(0, 1, (12, 12)) for _ in range(2)]
    region = (slice(j0, j0 + jn), slice(i0, i0 + in_))
    buf = pack_boundary_offsets(arrays, region)
    targets = [np.zeros((12, 12)) for _ in range(2)]
    unpack_boundary_offsets(buf, targets, region)
    for a, t in zip(arrays, targets):
        assert np.array_equal(a[region], t[region])


@given(
    seed=st.integers(0, 2**32 - 1),
    n_regions=st.integers(1, 5),
)
@settings(max_examples=30, deadline=None)
def test_irregular_pack_equivalence(seed, n_regions):
    rng = np.random.default_rng(seed)
    field = rng.normal(0, 1, (30, 30))
    regions = []
    for _ in range(n_regions):
        j0 = 3 * int(rng.integers(0, 5))
        i0 = 3 * int(rng.integers(0, 5))
        jn = 3 * int(rng.integers(1, 4))
        in_ = 3 * int(rng.integers(1, 4))
        regions.append((j0, min(j0 + jn, 30), i0, min(i0 + in_, 30)))
    a = pack_irregular_naive(field, regions)
    b = pack_irregular_offsets(field, regions)
    assert np.allclose(a, b, rtol=1e-13)


@given(counts=st.lists(st.integers(1, 9), min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_offset_table_prefix_sums(counts):
    regions = [(0, 3, 0, 3 * c) for c in counts]
    t = build_offset_table(regions)
    assert t.total == sum(counts)
    acc = 0
    for c, off in zip(counts, t.offsets):
        assert off == acc
        acc += c


# ---------------------------------------------------------------------------
# Numerical kernels
# ---------------------------------------------------------------------------


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_nlmass_conserves_in_closed_box(seed):
    ny, nx = 8, 8
    rng = np.random.default_rng(seed)
    z = np.zeros(eta_shape(ny, nx))
    m = np.zeros(flux_m_shape(ny, nx))
    n = np.zeros(flux_n_shape(ny, nx))
    h = np.full(eta_shape(ny, nx), 100.0)
    from repro.grid.staggered import NGHOST as G

    m[G : G + ny, G + 1 : G + nx] = rng.normal(0, 1, (ny, nx - 1))
    n[G + 1 : G + ny, G : G + nx] = rng.normal(0, 1, (ny - 1, nx))
    out = np.empty_like(z)
    nlmass(z, m, n, h, 0.01, 10.0, out=out)
    assert abs(out[interior(ny, nx)].sum()) < 1e-10


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_momentum_xy_symmetry(seed):
    ny = nx = 8
    rng = np.random.default_rng(seed)
    z = rng.normal(0, 0.05, eta_shape(ny, nx))
    m = rng.normal(0, 0.2, flux_m_shape(ny, nx))
    n = rng.normal(0, 0.2, flux_n_shape(ny, nx))
    h = np.full(eta_shape(ny, nx), 50.0)
    out_m = np.empty_like(m)
    out_n = np.empty_like(n)
    nlmnt2(z, m, n, h, 0.1, 10.0, 0.025, out_m=out_m, out_n=out_n)
    out_m2 = np.empty_like(n.T).copy()
    out_n2 = np.empty_like(m.T).copy()
    nlmnt2(
        z.T.copy(), n.T.copy(), m.T.copy(), h.T.copy(), 0.1, 10.0, 0.025,
        out_m=out_m2, out_n=out_n2,
    )
    assert np.allclose(out_n.T, out_m2, atol=1e-12)
    assert np.allclose(out_m.T, out_n2, atol=1e-12)


@given(
    dx=st.floats(1.0, 1000.0),
    h=st.floats(0.1, 8000.0),
    safety=st.floats(0.1, 1.0),
)
@settings(max_examples=50, deadline=None)
def test_cfl_time_step_is_stable(dx, h, safety):
    dt = cfl_time_step(dx, h, safety=safety)
    check_cfl(dx, dt, h)  # must never raise


# ---------------------------------------------------------------------------
# Decomposition and load balancing
# ---------------------------------------------------------------------------


@given(
    widths=st.lists(st.integers(1, 20), min_size=2, max_size=12),
    n_ranks=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_equal_cell_assignment_covers_everything(widths, n_ranks):
    blocks = []
    x = 0
    for k, w in enumerate(widths):
        blocks.append(Block(k, 1, 3 * x, 0, 3 * w, 9))
        x += w
    grid = NestedGrid([GridLevel(index=1, dx=10.0, blocks=blocks)])
    n = min(n_ranks, sum(3 * w * 9 for w in widths))
    d = equal_cell_assignment(grid, min(n, grid.n_cells // 1), split_blocks=True)
    # Decomposition.__post_init__ already validates exact coverage; assert
    # the cell totals agree as well.
    assert sum(d.cells_per_rank()) == grid.n_cells


@given(
    seed=st.integers(0, 1000),
    n_blocks=st.integers(4, 30),
    n_ranks=st.integers(2, 4),
)
@settings(max_examples=25, deadline=None)
def test_separators_always_valid(seed, n_blocks, n_ranks):
    rng = np.random.default_rng(seed)
    cells = list(rng.integers(1000, 100_000, size=n_blocks))
    model = LinearPerfModel(1e-4, 40.0)
    seps = optimize_separators(
        cells, n_ranks, model, iterations=200, seed=seed, restarts=2
    )
    assert len(seps) == n_ranks - 1
    assert seps == sorted(seps)
    assert all(0 < s < n_blocks for s in seps)
    assert len(set(seps)) == len(seps)
    # Every rank non-empty, and times well-defined.
    t = _rank_times(cells, seps, model)
    assert len(t) == n_ranks
    assert np.all(t > 0)


@given(seed=st.integers(0, 1000))
@settings(max_examples=20, deadline=None)
def test_restriction_mean_bounds(seed):
    """The 3x3 average can never exceed the child's extremes."""
    from repro.grid.staggered import NGHOST as G
    from repro.nesting.restrict import restrict_eta

    rng = np.random.default_rng(seed)
    parent = Block(0, 1, 0, 0, 6, 6)
    child = Block(1, 2, 0, 0, 18, 18)
    pz = np.zeros(eta_shape(6, 6))
    cz = np.zeros(eta_shape(18, 18))
    cz[G : G + 18, G : G + 18] = rng.normal(0, 1, (18, 18))
    restrict_eta(pz, cz, parent, child, mode="full")
    inner = cz[G : G + 18, G : G + 18]
    written = pz[G : G + 6, G : G + 6]
    assert written.max() <= inner.max() + 1e-12
    assert written.min() >= inner.min() - 1e-12
