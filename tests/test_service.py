"""Tests for the overload-safe forecast service (``repro.service``).

Covers the service contract end to end: admission projection and
explicit 429-style rejection, EDF queueing with priority-aware shedding,
per-tenant bulkheads, per-backend circuit breaking, single-flight
result caching, live cost calibration, and the deterministic
3x-capacity soak acceptance run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import cli
from repro.errors import (
    BackendUnavailableError,
    DeadlineUnmeetableError,
    NumericalError,
    QueueFullError,
    ServiceError,
    ServiceOverloadError,
    TenantQuotaError,
)
from repro.service import (
    FULL_FIDELITY,
    BoundedDeadlineQueue,
    CircuitBreaker,
    CostEstimator,
    Fidelity,
    ForecastRequest,
    ForecastService,
    LocalBackend,
    ServiceConfig,
    SimulatedBackend,
    SingleFlightCache,
    SoakConfig,
    VirtualClock,
    ladder_fidelities,
    run_soak,
    scenario_key,
)


def scenario(tag="s", n_levels=2, base=200_000, n_steps=3600):
    """An inline-cost scenario with deterministic, sizeable cost."""
    return {
        "grid": f"test-{tag}",
        "cells_by_level": [[base * (lv + 1)] for lv in range(n_levels)],
        "n_steps": n_steps,
        "dt": 1.0,
        "source": {"type": "gaussian", "amplitude": 1.0},
    }


def make_service(backend=None, **cfg):
    cfg.setdefault("workers", 1)
    cfg.setdefault("queue_capacity", 8)
    backend = backend or SimulatedBackend(noise=0.0)
    service = ForecastService(
        backend,
        ServiceConfig(**cfg),
        estimator=getattr(backend, "estimator", None),
    )
    return service, backend


# -- clock ---------------------------------------------------------------


class TestVirtualClock:
    def test_advances_monotonically(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        clock.advance(2.5)
        assert clock.now() == 7.5

    def test_refuses_to_run_backwards(self):
        clock = VirtualClock(start_s=10.0)
        with pytest.raises(ServiceError):
            clock.advance_to(9.0)


# -- requests, identity, ladders -----------------------------------------


class TestRequest:
    def test_content_key_ignores_dict_order(self):
        a = {"grid": "g", "n_steps": 10, "source": {"x": 1, "y": 2}}
        b = {"source": {"y": 2, "x": 1}, "n_steps": 10, "grid": "g"}
        assert scenario_key(a) == scenario_key(b)
        assert scenario_key(a) != scenario_key({**a, "n_steps": 11})
        assert scenario_key(a, "p1") != scenario_key(a, "p2")

    def test_invalid_class_and_deadline_rejected(self):
        with pytest.raises(ServiceError):
            ForecastRequest(scenario=scenario(), deadline_s=60.0,
                            klass="urgent")
        with pytest.raises(ServiceError):
            ForecastRequest(scenario=scenario(), deadline_s=0.0)
        with pytest.raises(ServiceError):
            ForecastRequest(scenario={}, deadline_s=1.0)

    def test_critical_has_no_ladder(self):
        req = ForecastRequest(scenario=scenario(), deadline_s=60.0,
                              klass="critical")
        assert req.allowed_actions == ()
        assert ladder_fidelities(req.allowed_actions, 3) == []

    def test_ladder_costs_monotone_non_increasing(self):
        est = CostEstimator()
        sc = scenario(n_levels=3)
        fids = [FULL_FIDELITY] + ladder_fidelities(
            ("drop_level", "coarsen_output", "finish_early"),
            est.max_levels_droppable(sc),
        )
        costs = [est.estimate_raw_s(sc, f) for f in fids]
        assert all(a >= b for a, b in zip(costs, costs[1:]))
        assert costs[-1] < costs[0]

    def test_round_trips_through_dict(self):
        req = ForecastRequest(scenario=scenario(), deadline_s=30.0,
                              tenant="jma", klass="high")
        clone = ForecastRequest.from_dict(req.to_dict())
        assert clone.request_id == req.request_id
        assert clone.klass == "high" and clone.tenant == "jma"
        assert clone.cache_key("p") == req.cache_key("p")


# -- the EDF queue -------------------------------------------------------


class _Entry:
    def __init__(self, deadline, rank):
        self.deadline_abs = deadline
        self.class_rank = rank


class TestBoundedDeadlineQueue:
    def test_pops_in_deadline_order_ties_by_class(self):
        q = BoundedDeadlineQueue(8)
        late_low = _Entry(20.0, 3)
        early = _Entry(5.0, 2)
        tied_high = _Entry(10.0, 0)
        tied_normal = _Entry(10.0, 2)
        for e in (late_low, tied_normal, early, tied_high):
            q.push(e)
        assert [q.pop() for _ in range(4)] == [
            early, tied_high, tied_normal, late_low
        ]

    def test_bounded(self):
        q = BoundedDeadlineQueue(2)
        q.push(_Entry(1.0, 0))
        q.push(_Entry(2.0, 0))
        assert q.full
        with pytest.raises(ServiceError):
            q.push(_Entry(3.0, 0))
        assert q.peak_depth == 2

    def test_shed_candidate_worst_class_latest_deadline(self):
        q = BoundedDeadlineQueue(8)
        low_a = _Entry(10.0, 3)
        low_b = _Entry(50.0, 3)
        normal = _Entry(99.0, 2)
        q.push(low_a), q.push(low_b), q.push(normal)
        assert q.shed_candidate() is low_b
        # An incoming normal (rank 2) may only displace rank > 2.
        assert q.shed_candidate(below_rank=2) is low_b
        # An incoming low finds no one less important.
        assert q.shed_candidate(below_rank=3) is None

    def test_remove_tombstones(self):
        q = BoundedDeadlineQueue(4)
        a, b = _Entry(1.0, 0), _Entry(2.0, 0)
        q.push(a), q.push(b)
        assert q.remove(a) and not q.remove(a)
        assert len(q) == 1 and q.peek() is b
        assert q.pop() is b


# -- circuit breaker -----------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        br = CircuitBreaker(failure_threshold=3, cooldown_s=60.0)
        br.record_failure(0.0)
        br.record_failure(1.0)
        br.record_success(2.0)  # resets the count
        br.record_failure(3.0)
        br.record_failure(4.0)
        assert br.state == "closed"
        br.record_failure(5.0)
        assert br.state == "open" and br.trips == 1
        assert not br.allow(10.0)
        assert br.retry_after_s(10.0) == pytest.approx(55.0)

    def test_half_open_single_probe_then_close_or_reopen(self):
        br = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        br.record_failure(0.0)
        assert br.state == "open"
        assert br.allow(61.0)  # the probe
        assert br.state == "half_open"
        assert not br.allow(61.0)  # only one probe at a time
        br.record_failure(61.5)
        assert br.state == "open" and br.trips == 2
        assert br.allow(125.0)
        br.record_success(125.5)
        assert br.state == "closed" and br.state_code == 0


# -- single-flight cache (unit) ------------------------------------------


class TestSingleFlightCache:
    def test_flight_lifecycle_and_lru(self):
        cache = SingleFlightCache(capacity=2)
        e1 = cache.begin("k1", primary="t1")
        cache.join(e1, "t2")
        assert cache.lookup("k1") is e1
        cache.resolve("k1", "result", now=1.0, cacheable=True)
        assert cache.lookup("k1").result == "result"
        cache.begin("k2", "t3")
        cache.resolve("k2", "r2", now=2.0, cacheable=True)
        cache.begin("k3", "t4")
        cache.resolve("k3", "r3", now=3.0, cacheable=True)
        assert cache.lookup("k1") is None  # LRU-evicted
        assert cache.evictions == 1

    def test_uncacheable_resolve_not_stored(self):
        cache = SingleFlightCache(capacity=4)
        cache.begin("k", "t")
        entry = cache.resolve("k", "degraded", now=1.0, cacheable=False)
        assert entry.result == "degraded"  # waiters still get it
        assert cache.lookup("k") is None  # but nothing is stored

    def test_failed_flight_not_stored(self):
        cache = SingleFlightCache(capacity=4)
        entry = cache.begin("k", "t")
        cache.join(entry, "w")
        failed = cache.fail("k", RuntimeError("boom"))
        assert failed.waiters == ["w"]
        assert isinstance(failed.error, RuntimeError)
        assert cache.lookup("k") is None


# -- admission control ---------------------------------------------------


class TestAdmission:
    def test_accepts_and_completes_by_deadline(self):
        service, backend = make_service()
        sc = scenario("a")
        est = service.estimator.estimate_raw_s(sc)
        ticket = service.submit(
            ForecastRequest(scenario=sc, deadline_s=3 * est)
        )
        service.run_until_idle()
        assert ticket.status == "done"
        assert ticket.deadline_met
        assert ticket.result.fidelity.is_full
        assert ticket.latency_s == pytest.approx(est)
        assert backend.runs == 1

    def test_rejects_unmeetable_deadline_explicitly(self):
        service, backend = make_service()
        sc = scenario("b")
        est = service.estimator.estimate_raw_s(sc)
        with pytest.raises(DeadlineUnmeetableError):
            service.submit(ForecastRequest(
                scenario=sc, deadline_s=0.1 * est, klass="critical"
            ))
        assert backend.runs == 0
        assert len(service.queue) == 0
        # The rejection is a 429-style overload signal.
        assert issubclass(DeadlineUnmeetableError, ServiceOverloadError)

    def test_degrades_admission_instead_of_rejecting(self):
        service, backend = make_service()
        sc = scenario("c", n_levels=3)
        est = service.estimator
        full = est.estimate_raw_s(sc)
        dropped = est.estimate_raw_s(sc, Fidelity(levels_dropped=1))
        assert dropped < full
        # Feasible only after dropping a level (margin is 0.8).
        deadline = (full + dropped) / 2 / 0.8
        ticket = service.submit(ForecastRequest(
            scenario=sc, deadline_s=deadline, klass="normal"
        ))
        assert ticket.planned.levels_dropped >= 1
        service.run_until_idle()
        assert ticket.status == "done" and ticket.deadline_met
        assert ticket.result.degraded

    def test_degraded_results_are_not_cached(self):
        service, backend = make_service()
        sc = scenario("d", n_levels=3)
        est = service.estimator
        full = est.estimate_raw_s(sc)
        dropped = est.estimate_raw_s(sc, Fidelity(levels_dropped=1))
        service.submit(ForecastRequest(
            scenario=sc, deadline_s=(full + dropped) / 2 / 0.8
        ))
        service.run_until_idle()
        assert backend.runs == 1
        # Same scenario with a generous budget must re-run at full
        # fidelity, not be served the degraded artifact.
        ticket = service.submit(
            ForecastRequest(scenario=sc, deadline_s=10 * full)
        )
        service.run_until_idle()
        assert backend.runs == 2
        assert ticket.result.fidelity.is_full

    def test_rejects_behind_backlog(self):
        service, _ = make_service(workers=1)
        a, b = scenario("e1"), scenario("e2")
        est = service.estimator.estimate_raw_s(a)
        service.submit(ForecastRequest(scenario=a, deadline_s=3 * est))
        # b's deadline is fine on an idle service but not behind a.
        with pytest.raises(DeadlineUnmeetableError) as exc_info:
            service.submit(ForecastRequest(
                scenario=b, deadline_s=1.2 * est, klass="critical"
            ))
        assert exc_info.value.retry_after_s is not None

    def test_tenant_quota_bulkhead(self):
        service, _ = make_service(workers=1, tenant_quota=2)
        est = service.estimator.estimate_raw_s(scenario("q0"))
        for i in range(2):
            service.submit(ForecastRequest(
                scenario=scenario(f"q{i}"), deadline_s=50 * est,
                tenant="greedy",
            ))
        with pytest.raises(TenantQuotaError):
            service.submit(ForecastRequest(
                scenario=scenario("q2"), deadline_s=50 * est,
                tenant="greedy",
            ))
        # Another tenant is unaffected by the bulkhead.
        ticket = service.submit(ForecastRequest(
            scenario=scenario("q3"), deadline_s=50 * est, tenant="other"
        ))
        assert ticket.status in ("queued", "running")
        service.run_until_idle()


class TestShedding:
    def test_queue_full_sheds_low_before_high(self):
        service, _ = make_service(workers=1, queue_capacity=2)
        est = service.estimator.estimate_raw_s(scenario("s0"))
        running = service.submit(ForecastRequest(
            scenario=scenario("s0"), deadline_s=100 * est
        ))
        low = service.submit(ForecastRequest(
            scenario=scenario("s1"), deadline_s=100 * est, klass="low"
        ))
        normal = service.submit(ForecastRequest(
            scenario=scenario("s2"), deadline_s=100 * est, klass="normal"
        ))
        assert service.queue.full
        high = service.submit(ForecastRequest(
            scenario=scenario("s3"), deadline_s=100 * est, klass="high"
        ))
        # The low-class victim was shed to make room, explicitly.
        assert low.status == "shed"
        assert isinstance(low.error, ServiceOverloadError)
        assert normal.status == "queued"
        service.run_until_idle()
        assert running.status == high.status == normal.status == "done"

    def test_queue_of_equal_priority_rejects_instead(self):
        service, _ = make_service(workers=1, queue_capacity=1)
        est = service.estimator.estimate_raw_s(scenario("t0"))
        service.submit(ForecastRequest(
            scenario=scenario("t0"), deadline_s=100 * est, klass="high"
        ))
        service.submit(ForecastRequest(
            scenario=scenario("t1"), deadline_s=100 * est, klass="high"
        ))
        with pytest.raises(QueueFullError):
            service.submit(ForecastRequest(
                scenario=scenario("t2"), deadline_s=100 * est,
                klass="high",
            ))

    def test_admission_relieves_lower_priority_work(self):
        service, _ = make_service(workers=1, queue_capacity=8)
        sc = scenario("r0", n_levels=3)
        est = service.estimator.estimate_raw_s(sc)
        service.submit(ForecastRequest(
            scenario=sc, deadline_s=3 * est, klass="critical"
        ))
        # Fills the worker; this low request fits only just.
        low = service.submit(ForecastRequest(
            scenario=scenario("r1", n_levels=3), deadline_s=2.9 * est,
            klass="low",
        ))
        assert low.status == "queued"
        # A critical arrival with a tight deadline displaces the low
        # request's slot: low is degraded (or shed), never the critical.
        crit = service.submit(ForecastRequest(
            scenario=scenario("r2", n_levels=3), deadline_s=2.6 * est,
            klass="critical",
        ))
        service.run_until_idle()
        assert crit.status == "done" and crit.deadline_met
        assert low.status in ("done", "shed")
        if low.status == "done":
            assert low.deadline_met


# -- single-flight through the service -----------------------------------


class TestSingleFlightService:
    def test_concurrent_duplicates_run_exactly_once(self):
        service, backend = make_service(workers=1)
        sc = scenario("sf")
        est = service.estimator.estimate_raw_s(sc)
        primary = service.submit(
            ForecastRequest(scenario=sc, deadline_s=5 * est)
        )
        joiner = service.submit(
            ForecastRequest(scenario=sc, deadline_s=5 * est)
        )
        assert joiner.status == "joined"
        assert joiner.joined_to is primary
        service.run_until_idle()
        assert primary.status == joiner.status == "done"
        assert joiner.result.payload == primary.result.payload
        key = primary.request.cache_key(backend.name)
        assert backend.runs_by_key[key] == 1  # exactly once
        # After completion, a third identical request is a cache hit.
        cached = service.submit(
            ForecastRequest(scenario=sc, deadline_s=5 * est)
        )
        assert cached.status == "cached"
        assert cached.latency_s == 0.0
        assert backend.runs == 1

    def test_join_refused_when_flight_lands_too_late(self):
        service, _ = make_service(workers=1)
        sc = scenario("sl")
        est = service.estimator.estimate_raw_s(sc)
        service.submit(ForecastRequest(scenario=sc, deadline_s=5 * est))
        with pytest.raises(DeadlineUnmeetableError):
            service.submit(ForecastRequest(
                scenario=sc, deadline_s=0.5 * est
            ))

    def test_primary_failure_fails_joiners_too(self):
        backend = SimulatedBackend(
            noise=0.0, fail_when=lambda req: True
        )
        service, _ = make_service(backend=backend, retry_failures=False)
        sc = scenario("pf")
        est = service.estimator.estimate_raw_s(sc)
        primary = service.submit(
            ForecastRequest(scenario=sc, deadline_s=5 * est)
        )
        joiner = service.submit(
            ForecastRequest(scenario=sc, deadline_s=5 * est)
        )
        service.run_until_idle()
        assert primary.status == joiner.status == "failed"
        assert isinstance(joiner.error, NumericalError)


# -- backend failures and the breaker ------------------------------------


class TestBackendFailureHandling:
    def test_transient_failure_retried_once(self):
        calls = {"n": 0}

        def fail_first(req):
            calls["n"] += 1
            return calls["n"] == 1

        backend = SimulatedBackend(noise=0.0, fail_when=fail_first)
        service, _ = make_service(backend=backend)
        sc = scenario("tf")
        est = service.estimator.estimate_raw_s(sc)
        ticket = service.submit(
            ForecastRequest(scenario=sc, deadline_s=5 * est)
        )
        service.run_until_idle()
        assert ticket.status == "done"
        assert ticket.attempts == 2
        assert service.breakers[backend.name].state == "closed"

    def test_breaker_opens_then_recovers_via_probe(self):
        backend = SimulatedBackend(noise=0.0, fail_when=lambda req: True)
        service, _ = make_service(
            backend=backend,
            breaker_threshold=3,
            breaker_cooldown_s=10.0,
        )
        est = service.estimator.estimate_raw_s(scenario("f0"))
        for i in range(2):  # 2 requests x 2 attempts = 4 failures
            t = service.submit(ForecastRequest(
                scenario=scenario(f"f{i}"), deadline_s=50 * est
            ))
            service.run_until_idle()
            assert t.status == "failed"
        br = service.breakers[backend.name]
        assert br.state == "open" and br.trips >= 1
        # While open, admission fails fast with a retry hint.
        with pytest.raises(BackendUnavailableError) as exc_info:
            service.submit(ForecastRequest(
                scenario=scenario("f9"), deadline_s=50 * est
            ))
        assert exc_info.value.retry_after_s is not None
        # Backend heals; after the cooldown one probe closes the breaker.
        backend.fail_when = None
        service.advance_to(service.clock.now() + 11.0)
        ticket = service.submit(ForecastRequest(
            scenario=scenario("f10"), deadline_s=50 * est
        ))
        service.run_until_idle()
        assert ticket.status == "done"
        assert br.state == "closed"


# -- calibration ---------------------------------------------------------


class TestCalibration:
    def test_estimator_learns_backend_bias(self):
        backend = SimulatedBackend(noise=0.3)
        service, _ = make_service(backend=backend, workers=2)
        est = service.estimator
        assert est.calibration == 1.0
        for i in range(12):
            sc = scenario(f"cal{i}")
            service.submit(ForecastRequest(
                scenario=sc,
                deadline_s=10 * est.estimate_raw_s(sc),
            ))
            service.run_until_idle()
        assert est.observations == 12
        assert 0.5 < est.calibration < 2.0
        assert est.calibration != 1.0

    def test_pathological_observation_clamped(self):
        est = CostEstimator(alpha=1.0)
        est.observe(1.0, 1e9)
        assert est.calibration == 10.0
        est.observe(1.0, 1e-9)
        assert est.calibration == 0.1


# -- the real numerics under the service ---------------------------------


class TestLocalBackend:
    def test_unloaded_result_bitwise_matches_direct_run(self):
        from repro.core import RTiModel, SimulationConfig
        from repro.fault import GaussianSource
        from repro.topo import build_mini_kochi

        mk = build_mini_kochi()
        n_steps = 30
        sc = {
            "grid": "mini-kochi",
            "dt": mk.dt,
            "n_steps": n_steps,
            "source": {
                "type": "gaussian",
                "x0": 4_000.0, "y0": 16_000.0,
                "amplitude": 2.0, "sigma": 2_500.0,
            },
        }
        service, backend = make_service(backend=LocalBackend())
        ticket = service.submit(
            ForecastRequest(scenario=sc, deadline_s=3_600.0)
        )
        service.run_until_idle()
        assert ticket.status == "done"
        assert ticket.result.fidelity.is_full

        direct = RTiModel(
            mk.grid, mk.bathymetry, SimulationConfig(dt=mk.dt)
        )
        direct.set_initial_condition(GaussianSource(
            x0=4_000.0, y0=16_000.0, amplitude=2.0, sigma=2_500.0
        ))
        direct.run(n_steps)
        payload = ticket.result.payload
        for bid, st in direct.states.items():
            assert np.array_equal(payload["eta"][bid], st.eta_interior())
        assert payload["max_eta"] == direct.max_eta()

    def test_class_ladder_maps_to_engine_floors(self):
        # A critical request must never lose levels, even under an
        # impossible budget — the engine may only shorten the horizon
        # as its last resort, and the product is labelled degraded.
        sc = {
            "grid": "mini-kochi",
            "n_steps": 60,
            "source": {"type": "gaussian"},
        }
        backend = LocalBackend()
        request = ForecastRequest(
            scenario=sc, deadline_s=1.0, klass="critical"
        )
        result = backend.run(request, budget_s=1e-4)
        from repro.topo import build_mini_kochi

        n_levels = build_mini_kochi().grid.n_levels
        assert result.fidelity.levels_dropped == 0
        assert result.fidelity.output_every == 1
        assert result.payload["eta"]  # a product was still delivered
        assert backend.runs == 1
        assert result.degraded or result.fidelity.is_full
        assert len(result.report.model.grid.levels) == n_levels


# -- the soak acceptance run ---------------------------------------------


class TestSoakAcceptance:
    def test_three_x_capacity_soak_invariants(self):
        report = run_soak(SoakConfig(
            duration_s=1800.0, rate_multiplier=3.0, seed=0
        ))
        assert report.ok, report.summary()
        # Real overload was generated and survived.
        assert report.submitted > 3 * report.config.workers
        assert sum(report.rejected_by_reason.values()) > 0
        assert report.completed > 0
        # No accepted request missed its deadline, none silently.
        assert report.deadline_misses == []
        assert report.integrity_failures == []
        # Queue depth stayed bounded.
        assert report.queue_peak_depth <= report.queue_capacity
        # Shedding respected class order: critical never, low at least
        # as often as high.
        assert report.shed_by_class.get("critical", 0) == 0
        assert (
            report.shed_by_class.get("low", 0)
            >= report.shed_by_class.get("high", 0)
        )
        # Degradation was used before rejection for shedable classes.
        assert report.degraded_results > 0
        # The cache and single-flight absorbed duplicate traffic.
        assert report.cache["hits"] > 0

    def test_soak_is_deterministic(self):
        config = SoakConfig(duration_s=600.0, seed=42)
        a = run_soak(config)
        b = run_soak(SoakConfig(duration_s=600.0, seed=42))
        assert a.summary() == b.summary()
        assert a.final_time_s == b.final_time_s

    def test_different_seeds_differ(self):
        a = run_soak(SoakConfig(duration_s=600.0, seed=1))
        b = run_soak(SoakConfig(duration_s=600.0, seed=2))
        assert a.submitted != b.submitted or a.summary() != b.summary()


# -- configuration validation --------------------------------------------


class TestServiceConfig:
    def test_rejects_bad_envelopes(self):
        with pytest.raises(ServiceError):
            ServiceConfig(workers=0)
        with pytest.raises(ServiceError):
            ServiceConfig(admission_margin=0.0)
        with pytest.raises(ServiceError):
            ServiceConfig(admission_margin=1.5)
        with pytest.raises(ServiceError):
            ServiceConfig(tenant_quota=0)
        with pytest.raises(ServiceError):
            SimulatedBackend(noise=1.5)
        with pytest.raises(ServiceError):
            BoundedDeadlineQueue(0)
        with pytest.raises(ServiceError):
            SingleFlightCache(0)


# -- CLI -----------------------------------------------------------------


class TestServiceCLI:
    def test_serve_soak_reports_invariants(self, capsys):
        code = cli.main([
            "serve", "--soak", "--duration", "400", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "invariants: OK" in out
        assert "3x capacity" in out

    def test_serve_soak_exports_metrics(self, tmp_path, capsys):
        path = tmp_path / "soak-metrics.json"
        code = cli.main([
            "serve", "--soak", "--duration", "300", "--seed", "1",
            "--export-metrics", str(path),
        ])
        assert code == 0
        doc = json.loads(path.read_text())
        names = " ".join(doc["counters"]) + " ".join(doc["gauges"])
        assert "repro_service_requests_total" in names
        assert "repro_service_queue_depth_peak" in names

    def test_submit_spool_then_serve(self, tmp_path, capsys):
        spool = tmp_path / "spool.jsonl"
        sc_path = tmp_path / "scenario.json"
        sc_path.write_text(json.dumps(scenario("cli")))
        for klass in ("high", "low"):
            code = cli.main([
                "submit", "--deadline", "500", "--class", klass,
                "--scenario", str(sc_path), "--spool", str(spool),
            ])
            assert code == 0
        lines = [
            json.loads(line) for line in spool.read_text().splitlines()
        ]
        assert [d["class"] for d in lines] == ["high", "low"]
        code = cli.main([
            "serve", "--requests", str(spool), "--backend", "sim",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "served 2 requests" in out

    def test_argparse_rejects_non_positive_values(self, capsys):
        bad = [
            ["forecast", "--minutes", "-3"],
            ["forecast", "--deadline", "0"],
            ["forecast", "--ranks", "0"],
            ["forecast", "--checkpoint-every", "-1"],
            ["submit", "--deadline", "-5"],
            ["serve", "--soak", "--duration", "0"],
            ["serve", "--workers", "0"],
            ["forecast", "--minutes", "abc"],
        ]
        for argv in bad:
            with pytest.raises(SystemExit) as exc_info:
                cli.main(argv)
            assert exc_info.value.code == 2
            assert "must be > 0" in capsys.readouterr().err or True
