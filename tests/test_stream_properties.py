"""Property-based invariants of the stream/queue simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import KernelInvocation, LaunchMode, StreamSimulator
from repro.hw.platform import PlatformSpec


def platform(solo=0.25, fixed=20.0, enqueue=2.0, launch=10.0):
    return PlatformSpec(
        name="test-gpu",
        kind="gpu",
        mem_bw_gbs=1000.0,
        solo_fraction=solo,
        kernel_fixed_us=fixed,
        enqueue_us=enqueue,
        launch_overhead_us=launch,
    )


kernel_sizes = st.lists(
    st.integers(10_000, 2_000_000), min_size=1, max_size=12
)


@given(sizes=kernel_sizes, q=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_all_kernels_complete_exactly_once(sizes, q):
    p = platform()
    sim = StreamSimulator(p, n_queues=q, mode=LaunchMode.ASYNC)
    sim.submit_all(
        [KernelInvocation("NLMNT2", c, label=f"k{i}") for i, c in enumerate(sizes)]
    )
    res = sim.run()
    assert sorted(e.label for e in res.events) == sorted(
        f"k{i}" for i in range(len(sizes))
    )


@given(sizes=kernel_sizes, q=st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_makespan_bounds(sizes, q):
    """Makespan is bounded below by perfect sharing and above by serial solo."""
    p = platform()
    kernels = [KernelInvocation("NLMNT2", c) for c in sizes]
    sim = StreamSimulator(p, n_queues=q, mode=LaunchMode.ASYNC)
    sim.submit_all(list(kernels))
    res = sim.run()
    total_bytes = sum(k.bytes_moved for k in kernels) * p.traffic_multiplier
    lower = 1e-3 * total_bytes / p.effective_bw_gbs
    serial = sum(
        p.kernel_fixed_us
        + 1e-3 * k.bytes_moved * p.traffic_multiplier / p.solo_bw_gbs
        for k in kernels
    ) + p.enqueue_us * len(kernels)
    assert res.makespan_us >= lower - 1e-6
    assert res.makespan_us <= serial + 1e-6


@given(sizes=kernel_sizes)
@settings(max_examples=30, deadline=None)
def test_async_never_slower_than_sync(sizes):
    p = platform()
    kernels = [KernelInvocation("NLMNT2", c) for c in sizes]
    sync = StreamSimulator(p, mode=LaunchMode.SYNC)
    sync.submit_all(list(kernels))
    t_sync = sync.run().makespan_us
    a = StreamSimulator(p, n_queues=4, mode=LaunchMode.ASYNC)
    a.submit_all(list(kernels))
    assert a.run().makespan_us <= t_sync + 1e-6


@given(sizes=kernel_sizes, q=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_events_nonoverlapping_within_queue(sizes, q):
    p = platform()
    sim = StreamSimulator(p, n_queues=q, mode=LaunchMode.ASYNC)
    sim.submit_all([KernelInvocation("NLMNT2", c) for c in sizes])
    res = sim.run()
    by_queue: dict[int, list] = {}
    for e in res.events:
        by_queue.setdefault(e.queue, []).append(e)
    for events in by_queue.values():
        events.sort(key=lambda e: e.start_us)
        for a, b in zip(events, events[1:]):
            assert a.end_us <= b.start_us + 1e-9


@given(sizes=kernel_sizes, q=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_utilizations_in_unit_interval(sizes, q):
    p = platform()
    sim = StreamSimulator(p, n_queues=q, mode=LaunchMode.ASYNC)
    sim.submit_all([KernelInvocation("NLMNT2", c) for c in sizes])
    res = sim.run()
    assert 0.0 <= res.memory_utilization <= res.gpu_utilization <= 1.0 + 1e-9


@given(
    sizes=kernel_sizes,
    scale=st.floats(0.2, 3.0),
)
@settings(max_examples=25, deadline=None)
def test_bw_scale_inversely_scales_transfer_time(sizes, scale):
    """Halving the bandwidth must not make anything faster."""
    p = platform()
    a = StreamSimulator(p, n_queues=4, bw_scale=1.0)
    a.submit_all([KernelInvocation("NLMNT2", c) for c in sizes])
    b = StreamSimulator(p, n_queues=4, bw_scale=scale)
    b.submit_all([KernelInvocation("NLMNT2", c) for c in sizes])
    ta, tb = a.run().makespan_us, b.run().makespan_us
    if scale < 1.0:
        assert tb >= ta - 1e-6
    else:
        assert tb <= ta + 1e-6
