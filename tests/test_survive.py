"""In-flight rank-failure survival (repro.resilience.survive).

The tentpole contract: kill a rank mid-run and the distributed forecast
completes from the latest diskless buddy-checkpoint epoch — not from
t=0 — via shrink or spare-rank respawn, **bitwise identical** to a
failure-free run.  Plus the supporting machinery: buddy checkpointing,
shrink re-decomposition, MAD straggler detection, jittered retry
backoff, and straggler hedging.
"""

import numpy as np
import pytest

from repro.core import RTiModel, SimulationConfig
from repro.errors import (
    CommunicationError,
    ConfigurationError,
    DecompositionError,
    RetryExhaustedError,
)
from repro.fault import GaussianSource
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.par.decomposition import (
    Decomposition,
    RankWork,
    WorkItem,
    equal_cell_assignment,
)
from repro.persist import RunStore
from repro.persist.journal import (
    EVENT_RANK_FAILURE,
    EVENT_RECOVERY_EPOCH,
    recovery_epochs,
)
from repro.resilience import FaultPlan, FaultSpec, retry_with_backoff
from repro.resilience.health import StepTimeMonitor
from repro.resilience.survive import (
    NeighborCheckpointStore,
    RankSnapshot,
    SurvivalConfig,
    _assemble_recovery,
    buddy_of,
    survivable_run_distributed,
)
from repro.topo import build_mini_kochi
from repro.validation import FlatBathymetry


def flat_grid(n_blocks=2):
    w = 48 // n_blocks
    return NestedGrid(
        [
            GridLevel(
                index=1,
                dx=100.0,
                blocks=[
                    Block(i, 1, i * w, 0, w, 48) for i in range(n_blocks)
                ],
            )
        ]
    )


def whole_block_decomp(grid, n_ranks):
    return Decomposition(
        grid,
        tuple(
            RankWork(r, 1, (WorkItem(grid.block(r)),))
            for r in range(n_ranks)
        ),
    )


def source():
    return GaussianSource(x0=2400.0, y0=2400.0, amplitude=1.0, sigma=600.0)


def config():
    return SimulationConfig(dt=1.0, boundary="wall")


def reference_run(grid, bathy, cfg, src, n_steps):
    model = RTiModel(grid, bathy, cfg)
    model.set_initial_condition(src)
    model.run(n_steps)
    return {
        bid: st.eta_interior().copy() for bid, st in model.states.items()
    }


def assert_identical(a: dict, b: dict):
    assert a.keys() == b.keys()
    for bid in a:
        assert np.array_equal(a[bid], b[bid]), (
            f"block {bid}: max diff {np.abs(a[bid] - b[bid]).max()}"
        )


# -- unit: ring buddies and the checkpoint store -------------------------


class TestNeighborCheckpointStore:
    def test_buddy_ring(self):
        assert buddy_of(0, 4) == 1
        assert buddy_of(3, 4) == 0
        assert buddy_of(0, 1) == 0

    def snap(self, epoch, rank=0):
        return RankSnapshot(
            epoch=epoch, step=epoch * 10, rank=rank,
            blocks={rank: (np.zeros(2),) * 6 + (0,)},
        )

    def test_capacity_prunes_oldest(self):
        store = NeighborCheckpointStore(capacity=2)
        for e in range(4):
            store.put_own(self.snap(e))
            store.put_replica(self.snap(e, rank=1))
        assert sorted(store.own) == [2, 3]
        assert sorted(store.replicas) == [2, 3]
        assert store.epochs() == [2, 3]

    def test_assemble_picks_latest_complete_epoch(self):
        grid = flat_grid(2)
        s0, s1 = (NeighborCheckpointStore() for _ in range(2))
        for e in (1, 2):
            s0.put_own(RankSnapshot(e, e * 10, 0, {0: ("b0",)}))
            s1.put_own(RankSnapshot(e, e * 10, 1, {1: ("b1",)}))
        # Epoch 3 exists only on rank 0: incomplete, must be skipped.
        s0.put_own(RankSnapshot(3, 30, 0, {0: ("b0",)}))
        epoch, step, blocks = _assemble_recovery(grid, [s0, s1])
        assert (epoch, step) == (2, 20)
        assert set(blocks) == {0, 1}

    def test_assemble_uses_buddy_replica_for_dead_rank(self):
        grid = flat_grid(2)
        # Only rank 0's store survives; it holds rank 1's state as the
        # ring replica (1's buddy is 0 in a 2-rank ring).
        s0 = NeighborCheckpointStore()
        s0.put_own(RankSnapshot(5, 50, 0, {0: ("b0",)}))
        s0.put_replica(RankSnapshot(5, 50, 1, {1: ("b1",)}))
        epoch, step, blocks = _assemble_recovery(grid, [s0])
        assert (epoch, step) == (5, 50)
        assert set(blocks) == {0, 1}

    def test_assemble_none_when_no_complete_epoch(self):
        grid = flat_grid(2)
        s0 = NeighborCheckpointStore()
        s0.put_own(RankSnapshot(0, 0, 0, {0: ("b0",)}))
        assert _assemble_recovery(grid, [s0]) is None


class TestSurvivalConfig:
    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            SurvivalConfig(policy="pray")

    def test_rejects_single_epoch_store(self):
        with pytest.raises(ConfigurationError):
            SurvivalConfig(store_capacity=1)

    def test_rejects_negative_spares(self):
        with pytest.raises(ConfigurationError):
            SurvivalConfig(spare_ranks=-1)


# -- unit: shrink re-decomposition ---------------------------------------


class TestShrinkDecomposition:
    def test_covers_all_blocks_on_fewer_ranks(self):
        from repro.balance.apply import shrink_decomposition

        mk = build_mini_kochi()
        all_ids = {b.block_id for b in mk.grid.all_blocks()}
        for n in (1, 3, 4):
            d = shrink_decomposition(mk.grid, n, iterations=50)
            assert d.n_ranks == n
            seen = [
                it.block.block_id for rw in d.ranks for it in rw.items
            ]
            assert sorted(seen) == sorted(all_ids)

    def test_rejects_more_ranks_than_blocks(self):
        from repro.balance.apply import shrink_decomposition

        grid = flat_grid(2)
        with pytest.raises(DecompositionError):
            shrink_decomposition(grid, 3)


# -- unit: MAD straggler detection ---------------------------------------


class TestStepTimeMonitor:
    def test_flags_obvious_straggler(self):
        mon = StepTimeMonitor()
        per = {0: 0.10, 1: 0.11, 2: 0.10, 3: 0.55}
        assert mon.stragglers(per) == [3]

    def test_lockstep_ranks_not_flagged(self):
        mon = StepTimeMonitor()
        per = {0: 0.100, 1: 0.1001, 2: 0.0999, 3: 0.1002}
        assert mon.stragglers(per) == []

    def test_needs_three_samples(self):
        mon = StepTimeMonitor()
        assert mon.stragglers({0: 0.1, 1: 99.0}) == []

    def test_worst_first_ordering(self):
        mon = StepTimeMonitor(min_ratio=1.2)
        per = {0: 0.1, 1: 0.1, 2: 0.1, 3: 0.4, 4: 0.9}
        assert mon.stragglers(per) == [4, 3]


# -- unit: jittered, budgeted retry backoff ------------------------------


class TestRetryBackoff:
    def _failing(self, n_failures):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= n_failures:
                raise CommunicationError("transient")
            return "ok"

        return fn, calls

    def test_full_jitter_sleeps_within_exponential_envelope(
        self, monkeypatch
    ):
        import random

        import repro.resilience.recovery as rec

        sleeps = []
        monkeypatch.setattr(rec.time, "sleep", sleeps.append)
        fn, _ = self._failing(3)
        out = retry_with_backoff(
            fn, attempts=4, backoff_s=0.1, rng=random.Random(7)
        )
        assert out == "ok"
        assert len(sleeps) == 3
        for i, s in enumerate(sleeps):
            assert 0.0 <= s <= 0.1 * 2**i

    def test_seeded_rng_reproducible(self, monkeypatch):
        import random

        import repro.resilience.recovery as rec

        runs = []
        for _ in range(2):
            sleeps = []
            monkeypatch.setattr(rec.time, "sleep", sleeps.append)
            fn, _ = self._failing(2)
            retry_with_backoff(
                fn, attempts=3, backoff_s=0.1, rng=random.Random(42)
            )
            runs.append(sleeps)
        assert runs[0] == runs[1]

    def test_max_elapsed_caps_attempts(self, monkeypatch):
        import repro.resilience.recovery as rec

        t = {"now": 0.0}
        monkeypatch.setattr(rec.time, "monotonic", lambda: t["now"])

        def sleep(s):
            t["now"] += s

        monkeypatch.setattr(rec.time, "sleep", sleep)
        fn, calls = self._failing(99)
        with pytest.raises(RetryExhaustedError) as exc_info:
            retry_with_backoff(
                fn,
                attempts=10,
                backoff_s=0.05,
                jitter=False,
                max_elapsed_s=0.12,
            )
        # Sleep 0.05, then 0.10 truncated to the remaining 0.07: the
        # 0.12 s budget is spent after 2 calls, not 10.
        assert calls["n"] == 2
        assert exc_info.value.attempts == 2
        assert isinstance(exc_info.value.__cause__, CommunicationError)


# -- integration: the survival paths, all bitwise ------------------------


class TestSurvivableRuns:
    N_STEPS = 30

    def setup_run(self, n_blocks=2):
        grid = flat_grid(n_blocks)
        bathy = FlatBathymetry(50.0)
        cfg = config()
        src = source()
        ref = reference_run(grid, bathy, cfg, src, self.N_STEPS)
        return grid, bathy, cfg, src, ref

    def test_failure_free_is_plain_distributed(self):
        grid, bathy, cfg, src, ref = self.setup_run()
        eta, report = survivable_run_distributed(
            grid, bathy, cfg, whole_block_decomp(grid, 2), src,
            self.N_STEPS, survival=SurvivalConfig(checkpoint_every=5),
            timeout=120.0, comm_timeout=10.0,
        )
        assert_identical(ref, eta)
        assert report.completed_via == "distributed"
        assert len(report.incarnations) == 1
        assert report.rank_failures == 0

    def test_crash_recovers_by_shrinking_not_from_t0(self, tmp_path):
        grid, bathy, cfg, src, ref = self.setup_run()
        plan = FaultPlan(
            [FaultSpec(kind="rank_crash", rank=1, step=24)], seed=1
        )
        store = RunStore(tmp_path / "run")
        eta, report = survivable_run_distributed(
            grid, bathy, cfg, whole_block_decomp(grid, 2), src,
            self.N_STEPS, survival=SurvivalConfig(checkpoint_every=5),
            fault_plan=plan, store=store, timeout=120.0, comm_timeout=5.0,
        )
        assert_identical(ref, eta)
        assert report.shrinks == 1 and report.rank_failures == 1
        # Resumed from epoch 4 (step 20) — not from t=0.
        last = report.incarnations[-1]
        assert last.action == "shrink"
        assert last.n_ranks == 1
        assert 0 < last.start_step <= 24
        # The failure and the recovery epoch are journaled write-ahead.
        events = store.events()
        assert any(
            ev["event"] == EVENT_RANK_FAILURE and ev["ranks"] == [1]
            for ev in events
        )
        recs = recovery_epochs(events)
        assert recs and recs[0]["action"] == "shrink"
        assert recs[0]["step"] == last.start_step

    def test_crash_recovers_by_respawning_spare(self):
        grid, bathy, cfg, src, ref = self.setup_run()
        plan = FaultPlan(
            [FaultSpec(kind="rank_crash", rank=0, step=24)], seed=2
        )
        eta, report = survivable_run_distributed(
            grid, bathy, cfg, whole_block_decomp(grid, 2), src,
            self.N_STEPS,
            survival=SurvivalConfig(checkpoint_every=5, spare_ranks=1),
            fault_plan=plan, timeout=120.0, comm_timeout=5.0,
        )
        assert_identical(ref, eta)
        assert report.respawns == 1 and report.spares_used == 1
        assert report.shrinks == 0
        assert report.incarnations[-1].n_ranks == 2  # width preserved

    def test_message_drop_retries_same_width(self):
        grid, bathy, cfg, src, ref = self.setup_run()
        plan = FaultPlan(
            [FaultSpec(kind="msg_drop", rank=0, op=7)], seed=3
        )
        eta, report = survivable_run_distributed(
            grid, bathy, cfg, whole_block_decomp(grid, 2), src,
            self.N_STEPS, survival=SurvivalConfig(checkpoint_every=5),
            fault_plan=plan, timeout=120.0, comm_timeout=2.0,
        )
        assert_identical(ref, eta)
        assert report.epoch_retries == 1
        assert report.rank_failures == 0
        assert report.incarnations[-1].n_ranks == 2

    def test_breaker_falls_back_single_process_from_checkpoint(self):
        grid, bathy, cfg, src, ref = self.setup_run()
        plan = FaultPlan(
            [FaultSpec(kind="rank_crash", rank=1, step=24)], seed=4
        )
        eta, report = survivable_run_distributed(
            grid, bathy, cfg, whole_block_decomp(grid, 2), src,
            self.N_STEPS,
            survival=SurvivalConfig(checkpoint_every=5,
                                    max_rank_failures=0),
            fault_plan=plan, timeout=120.0, comm_timeout=5.0,
        )
        assert_identical(ref, eta)
        assert report.breaker_tripped
        assert report.completed_via == "single_process"

    def test_hedging_migrates_straggler_blocks(self):
        grid, bathy, cfg, src, ref = self.setup_run(n_blocks=3)
        # Rank 2 stalls 30 ms on every send: an unambiguous straggler.
        plan = FaultPlan(
            [
                FaultSpec(kind="straggler", rank=2, op=0, step=0,
                          span=100, factor=4.0, delay_s=0.03)
            ],
            seed=5,
        )
        eta, report = survivable_run_distributed(
            grid, bathy, cfg, whole_block_decomp(grid, 3), src,
            self.N_STEPS,
            survival=SurvivalConfig(
                checkpoint_every=10, hedge_stragglers=True,
                hedge_window=5, hedge_budget=2,
            ),
            fault_plan=plan, timeout=200.0, comm_timeout=20.0,
        )
        assert_identical(ref, eta)
        assert report.hedge_attempts >= 1
        kinds = {ev.kind for ev in report.events}
        assert "hedge_migrate" in kinds


class TestMiniKochiAcceptance:
    """The issue's acceptance scenario: 5-rank mini-Kochi, crash at 80%."""

    N_STEPS = 120
    CRASH_STEP = 96  # 80% of 120

    @pytest.fixture(scope="class")
    def kochi(self):
        mk = build_mini_kochi()
        cfg = SimulationConfig(dt=mk.dt)
        src = GaussianSource(
            x0=4_000.0, y0=16_000.0, amplitude=2.0, sigma=2_500.0
        )
        ref = reference_run(
            mk.grid, mk.bathymetry, cfg, src, self.N_STEPS
        )
        return mk, cfg, src, ref

    def _run(self, kochi, survival, plan):
        mk, cfg, src, ref = kochi
        decomp = equal_cell_assignment(mk.grid, 5, split_blocks=False)
        eta, report = survivable_run_distributed(
            mk.grid, mk.bathymetry, cfg, decomp, src, self.N_STEPS,
            survival=survival, fault_plan=plan,
            timeout=400.0, comm_timeout=10.0,
        )
        assert_identical(ref, eta)
        return report

    def test_shrink_at_80_percent_bitwise_with_metrics(self, kochi):
        import repro.obs as obs

        obs.reset()
        obs.enable()
        try:
            plan = FaultPlan(
                [
                    FaultSpec(kind="rank_crash", rank=2,
                              step=self.CRASH_STEP)
                ],
                seed=11,
            )
            report = self._run(
                kochi, SurvivalConfig(checkpoint_every=10), plan
            )
            assert report.shrinks == 1
            assert report.rank_failures == 1
            last = report.incarnations[-1]
            assert last.n_ranks == 4
            # Resumed from the epoch-9 buddy checkpoint, not from t=0.
            assert last.start_step == 90
            assert last.epoch == 9
            sample = obs.get_registry().sample("repro_recovery_")
            assert sample["repro_recovery_rank_failures_total"] == 1
            assert sample["repro_recovery_shrinks_total"] == 1
            assert sample["repro_recovery_epoch"] == 9
        finally:
            obs.reset()

    def test_respawn_at_80_percent_bitwise(self, kochi):
        plan = FaultPlan(
            [FaultSpec(kind="rank_crash", rank=2, step=self.CRASH_STEP)],
            seed=12,
        )
        report = self._run(
            kochi,
            SurvivalConfig(checkpoint_every=10, spare_ranks=1),
            plan,
        )
        assert report.respawns == 1 and report.spares_used == 1
        last = report.incarnations[-1]
        assert last.n_ranks == 5  # full width restored from the spare
        assert last.start_step == 90
