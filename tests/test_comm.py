"""Tests for the in-process simulated MPI (repro.par.comm)."""

import numpy as np
import pytest

from repro.errors import (
    CommTimeoutError,
    CommunicationError,
    CommunicatorRevokedError,
)
from repro.par.comm import ANY_SOURCE, Communicator, run_ranks


class TestPointToPoint:
    def test_send_recv_object(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_ranks(2, fn)
        assert results[1] == {"a": 7}

    def test_numpy_payload_copied(self):
        def fn(comm):
            if comm.rank == 0:
                data = np.arange(10)
                comm.send(data, dest=1)
                data[:] = -1  # mutation after send must not leak
                return None
            got = comm.recv(source=0)
            return int(got.sum())

        assert run_ranks(2, fn)[1] == 45

    def test_tag_matching_out_of_order(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_ranks(2, fn)[1] == ("first", "second")

    def test_any_source(self):
        def fn(comm):
            if comm.rank == 0:
                got = sorted(comm.recv(source=ANY_SOURCE) for _ in range(2))
                return got
            comm.send(comm.rank, dest=0)
            return None

        assert run_ranks(3, fn)[0] == [1, 2]

    def test_isend_irecv(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.isend(np.ones(4), dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return float(req.wait().sum())

        assert run_ranks(2, fn)[1] == 4.0

    def test_recv_timeout_is_deadlock_guard(self):
        def fn(comm):
            if comm.rank == 1:
                return comm.recv(source=0, timeout=0.2)
            return None

        with pytest.raises(CommunicationError):
            run_ranks(2, fn)


class TestCollectives:
    def test_barrier(self):
        order = []

        def fn(comm):
            order.append(("pre", comm.rank))
            comm.barrier_sync()
            order.append(("post", comm.rank))
            return True

        run_ranks(3, fn)
        pres = [i for i, (p, _r) in enumerate(order) if p == "pre"]
        posts = [i for i, (p, _r) in enumerate(order) if p == "post"]
        assert max(pres) < min(posts)

    def test_allreduce_sum(self):
        results = run_ranks(4, lambda c: c.allreduce(c.rank + 1))
        assert results == [10, 10, 10, 10]

    def test_allreduce_custom_op(self):
        results = run_ranks(3, lambda c: c.allreduce(c.rank, op=max))
        assert results == [2, 2, 2]

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank * 10, root=0)

        results = run_ranks(3, fn)
        assert results[0] == [0, 10, 20]
        assert results[1] is None


class TestErrorPropagation:
    def test_worker_exception_reraised(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier_sync(timeout=5.0)

        with pytest.raises((ValueError, CommunicationError)):
            run_ranks(2, fn)

    def test_zero_ranks_rejected(self):
        with pytest.raises(CommunicationError):
            run_ranks(0, lambda c: None)

    def test_bad_destination(self):
        def fn(comm):
            comm.send(1, dest=5)

        with pytest.raises(CommunicationError):
            run_ranks(2, fn)


class TestTimeoutContext:
    """Timeout errors must say *what* was pending, not just that time ran out."""

    def test_recv_timeout_carries_endpoints(self):
        def fn(comm):
            if comm.rank == 1:
                comm.recv(source=0, tag=7, timeout=0.2)
            return None

        _results, errors = run_ranks(2, fn, return_errors=True)
        assert len(errors) == 1
        rank, exc = errors[0]
        assert rank == 1
        assert isinstance(exc, CommTimeoutError)
        assert exc.source == 0
        assert exc.dest == 1
        assert exc.tag == 7
        assert exc.op == "recv"
        assert "tag=7" in str(exc)

    def test_irecv_wait_timeout_lists_pending_requests(self):
        def fn(comm):
            if comm.rank == 1:
                req = comm.irecv(source=0, tag=3)
                req.wait(timeout=0.2)
            return None

        _results, errors = run_ranks(
            2, fn, timeout=10.0, comm_timeout=0.5, return_errors=True
        )
        waits = [
            e
            for _r, e in errors
            if isinstance(e, CommTimeoutError) and e.op == "irecv"
        ]
        assert waits, f"no irecv timeout surfaced: {errors}"
        exc = waits[0]
        assert exc.source == 0
        assert exc.tag == 3
        assert any("irecv(source=0, tag=3)" in p for p in exc.pending)

    def test_return_errors_does_not_raise(self):
        def fn(comm):
            if comm.rank == 0:
                raise ValueError("boom")
            return "survivor"

        results, errors = run_ranks(2, fn, return_errors=True)
        assert results[1] == "survivor"
        assert [r for r, _e in errors] == [0]


class TestRevokeAndAgree:
    """ULFM-style revocation + agreement on the dead-rank set."""

    def test_revoke_releases_blocked_receiver(self):
        def fn(comm):
            if comm.rank == 0:
                comm.revoke()
                return "revoker"
            try:
                comm.recv(source=0, timeout=10.0)
            except CommunicatorRevokedError:
                return "released"

        results = run_ranks(2, fn, timeout=10.0)
        assert results == ["revoker", "released"]

    def test_agree_converges_on_dead_set(self):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("dead rank")
            try:
                comm.recv(source=2, timeout=5.0)
            except CommunicationError:
                comm.revoke()
                return comm.agree_failures(timeout=5.0)

        results, errors = run_ranks(3, fn, timeout=20.0, return_errors=True)
        assert [r for r, _e in errors] == [2]
        assert results[0] == (2,)
        assert results[1] == (2,)

    def test_agree_with_no_failures_returns_empty(self):
        results = run_ranks(
            2, lambda c: c.agree_failures(timeout=5.0), timeout=10.0
        )
        assert results == [(), ()]


class TestHaloPipelineOverSimulatedMPI:
    """The pack -> send -> recv -> unpack pipeline of the real code."""

    def test_boundary_exchange_roundtrip(self):
        from repro.xchg.packing import (
            pack_boundary_offsets,
            unpack_boundary_offsets,
        )

        ny, nx = 8, 10
        rng = np.random.default_rng(3)
        fields = [rng.normal(0, 1, (ny, nx)) for _ in range(2)]

        def fn(comm):
            local = [f.copy() for f in fields]
            if comm.rank == 0:
                # Send my last two columns; receive into my ghost region
                # (here emulated as the first two columns).
                send_region = (slice(0, ny), slice(nx - 4, nx - 2))
                recv_region = (slice(0, ny), slice(nx - 2, nx))
                comm.send(pack_boundary_offsets(local, send_region), dest=1)
                buf = comm.recv(source=1)
                unpack_boundary_offsets(buf, local, recv_region)
            else:
                send_region = (slice(0, ny), slice(2, 4))
                recv_region = (slice(0, ny), slice(0, 2))
                comm.send(pack_boundary_offsets(local, send_region), dest=0)
                buf = comm.recv(source=0)
                unpack_boundary_offsets(buf, local, recv_region)
            return local

        r0, r1 = run_ranks(2, fn)
        # Rank 0's ghost columns hold rank 1's interior columns.
        assert np.array_equal(r0[0][:, nx - 2 : nx], fields[0][:, 2:4])
        assert np.array_equal(r1[0][:, 0:2], fields[0][:, nx - 4 : nx - 2])
