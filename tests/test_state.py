"""Tests for repro.core.state."""

import numpy as np
import pytest

from repro.core.state import BlockState
from repro.errors import GridError
from repro.grid.block import Block
from repro.grid.staggered import NGHOST, eta_shape


def make_state(nx=6, ny=4, depth=100.0):
    blk = Block(0, 1, 0, 0, nx, ny)
    return BlockState(blk, 10.0, np.full((ny, nx), depth))


class TestConstruction:
    def test_accepts_physical_depth_and_pads(self):
        st = make_state()
        assert st.hz.shape == eta_shape(4, 6)
        assert st.hz[0, 0] == 100.0  # edge-padded ghost

    def test_accepts_padded_depth(self):
        blk = Block(0, 1, 0, 0, 6, 4)
        depth = np.full(eta_shape(4, 6), 50.0)
        st = BlockState(blk, 10.0, depth)
        assert st.hz[0, 0] == 50.0

    def test_rejects_wrong_depth_shape(self):
        blk = Block(0, 1, 0, 0, 6, 4)
        with pytest.raises(GridError):
            BlockState(blk, 10.0, np.zeros((3, 3)))

    def test_initial_state_at_rest(self):
        st = make_state()
        assert np.all(st.z_old == 0.0)
        assert np.all(st.m_old == 0.0)
        assert st.total_depth().min() == pytest.approx(100.0)

    def test_land_initialized_to_ground_level(self):
        blk = Block(0, 1, 0, 0, 4, 4)
        depth = np.full((4, 4), -25.0)  # all land, 25 m elevation
        st = BlockState(blk, 10.0, depth)
        assert np.all(st.eta_interior() == 25.0)
        assert st.total_depth().max() == 0.0


class TestDoubleBuffering:
    def test_swap_flips_views(self):
        st = make_state()
        st.z_new[...] = 1.0
        assert st.z_old.max() == 0.0
        st.swap()
        assert st.z_old.max() == 1.0
        assert st.z_new.max() == 0.0

    def test_double_swap_is_identity(self):
        st = make_state()
        a = st.z_old
        st.swap()
        st.swap()
        assert st.z_old is a

    def test_buffers_are_distinct_arrays(self):
        st = make_state()
        assert st.z_old is not st.z_new
        assert st.m_old is not st.m_new
        assert st.n_old is not st.n_new


class TestInitialEta:
    def test_set_initial_eta_writes_both_buffers(self):
        st = make_state()
        eta = np.full((4, 6), 0.5)
        st.set_initial_eta(eta)
        assert np.all(st.eta_interior() == 0.5)
        st.swap()
        assert np.all(st.eta_interior() == 0.5)

    def test_clamps_to_ground(self):
        blk = Block(0, 1, 0, 0, 2, 2)
        depth = np.array([[-10.0, 100.0], [100.0, 100.0]])
        st = BlockState(blk, 10.0, depth)
        st.set_initial_eta(np.full((2, 2), 1.0))
        # Land cell keeps z = 10 (ground), not 1.
        assert st.eta_interior()[0, 0] == 10.0
        assert st.eta_interior()[0, 1] == 1.0

    def test_rejects_wrong_shape(self):
        with pytest.raises(GridError):
            make_state().set_initial_eta(np.zeros((2, 2)))


class TestVolume:
    def test_volume_at_rest(self):
        st = make_state(nx=6, ny=4, depth=100.0)
        assert st.volume() == pytest.approx(6 * 4 * 100.0 * 10.0 * 10.0)

    def test_volume_with_eta(self):
        st = make_state(nx=2, ny=2, depth=10.0)
        st.set_initial_eta(np.full((2, 2), 1.0))
        assert st.volume() == pytest.approx(4 * 11.0 * 100.0)
