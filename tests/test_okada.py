"""Tests for repro.fault.okada — physical sanity of the Okada-85 solution."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fault.okada import OkadaFault, okada_displacement


def thrust(**kw):
    base = dict(
        x0=0.0,
        y0=0.0,
        depth_top=10_000.0,
        strike_deg=90.0,
        dip_deg=15.0,
        rake_deg=90.0,
        slip=3.0,
        length=80_000.0,
        width=40_000.0,
    )
    base.update(kw)
    return OkadaFault(**base)


def grid(extent=300_000.0, n=41):
    xs = np.linspace(-extent, extent, n)
    return np.meshgrid(xs, xs)


class TestValidation:
    def test_rejects_bad_dip(self):
        with pytest.raises(ConfigurationError):
            thrust(dip_deg=0.0)
        with pytest.raises(ConfigurationError):
            thrust(dip_deg=91.0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            thrust(length=-1.0)
        with pytest.raises(ConfigurationError):
            thrust(depth_top=-5.0)

    def test_rake_decomposition(self):
        f = thrust(rake_deg=90.0, slip=2.0)
        assert f.u_dip == pytest.approx(2.0)
        assert f.u_strike == pytest.approx(0.0, abs=1e-12)
        g = thrust(rake_deg=0.0, slip=2.0)
        assert g.u_strike == pytest.approx(2.0)


class TestThrustDeformation:
    def test_finite_everywhere(self):
        x, y = grid()
        ux, uy, uz = okada_displacement(thrust(), x, y)
        for a in (ux, uy, uz):
            assert np.isfinite(a).all()

    def test_uplift_and_subsidence_pattern(self):
        # A thrust produces an uplift lobe toward the up-dip side and a
        # subsidence trough behind it.
        x, y = grid()
        _ux, _uy, uz = okada_displacement(thrust(), x, y)
        assert uz.max() > 0.1
        assert uz.min() < -0.02
        assert uz.max() > -uz.min()  # uplift dominates for thrust

    def test_amplitude_below_slip(self):
        x, y = grid()
        _ux, _uy, uz = okada_displacement(thrust(slip=3.0), x, y)
        assert np.abs(uz).max() < 3.0

    def test_far_field_decay(self):
        f = thrust()
        _ux, _uy, uz_near = okada_displacement(
            f, np.array([0.0]), np.array([50_000.0])
        )
        _ux, _uy, uz_far = okada_displacement(
            f, np.array([0.0]), np.array([2_000_000.0])
        )
        assert abs(uz_far[0]) < 1e-2 * abs(uz_near[0])

    def test_linear_in_slip(self):
        x, y = grid(n=21)
        _ux, _uy, uz1 = okada_displacement(thrust(slip=1.0), x, y)
        _ux, _uy, uz3 = okada_displacement(thrust(slip=3.0), x, y)
        assert np.allclose(uz3, 3.0 * uz1, rtol=1e-10)

    def test_along_strike_symmetry(self):
        # Pure dip slip with strike 90 (along +x): uz symmetric about the
        # fault's along-strike midpoint.
        x, y = grid(n=41)
        _ux, _uy, uz = okada_displacement(thrust(), x, y)
        assert np.allclose(uz, uz[:, ::-1], atol=1e-9)

    def test_deeper_fault_smoother_smaller(self):
        x, y = grid(n=31)
        _u, _v, shallow = okada_displacement(thrust(depth_top=5_000.0), x, y)
        _u, _v, deep = okada_displacement(thrust(depth_top=40_000.0), x, y)
        assert np.abs(deep).max() < np.abs(shallow).max()


class TestStrikeSlip:
    def test_quadrant_antisymmetry(self):
        # Pure strike-slip uz has a quadrant pattern: antisymmetric in the
        # along-strike coordinate.
        f = thrust(rake_deg=0.0, dip_deg=90.0, strike_deg=90.0)
        x, y = grid(n=41)
        _ux, _uy, uz = okada_displacement(f, x, y)
        assert np.abs(uz + uz[:, ::-1]).max() < 5e-3 * np.abs(uz).max() + 1e-12

    def test_small_vertical_signal(self):
        ss = thrust(rake_deg=0.0, dip_deg=90.0)
        th = thrust()
        x, y = grid(n=31)
        _u, _v, uz_ss = okada_displacement(ss, x, y)
        _u, _v, uz_th = okada_displacement(th, x, y)
        assert np.abs(uz_ss).max() < np.abs(uz_th).max()

    def test_vertical_dip_limit_continuous(self):
        # dip -> 90 deg uses the cos(delta) ~ 0 special branches; they
        # must connect continuously to the generic formulas.
        x, y = grid(n=21)
        f89 = thrust(rake_deg=0.0, dip_deg=89.99)
        f90 = thrust(rake_deg=0.0, dip_deg=90.0)
        _u, _v, uz89 = okada_displacement(f89, x, y)
        _u, _v, uz90 = okada_displacement(f90, x, y)
        assert np.allclose(uz89, uz90, atol=5e-4)

    def test_strike_rotation_consistency(self):
        # Rotating the fault and the observation grid together must give
        # the same vertical field.
        x, y = grid(n=21)
        f_ns = thrust(strike_deg=0.0)
        f_ew = thrust(strike_deg=90.0)
        _u, _v, uz_ns = okada_displacement(f_ns, x, y)
        _u, _v, uz_ew = okada_displacement(f_ew, y, -x)
        assert np.allclose(uz_ns, uz_ew, atol=1e-9)
