"""Tests for repro.analysis."""

import numpy as np
import pytest

from repro.analysis import (
    format_series,
    format_table,
    linear_fit,
    paper_vs_measured,
    r_squared,
)
from repro.analysis.fit import convergence_order
from repro.errors import ValidationError


class TestFit:
    def test_linear_fit_exact(self):
        x = np.array([0.0, 1.0, 2.0])
        a, b = linear_fit(x, 3 * x + 1)
        assert a == pytest.approx(3.0)
        assert b == pytest.approx(1.0)

    def test_r_squared_perfect(self):
        x = np.array([0.0, 1.0, 2.0])
        assert r_squared(x, 2 * x, 2.0, 0.0) == pytest.approx(1.0)

    def test_r_squared_penalizes_misfit(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = np.array([0.0, 2.0, 1.0, 3.0])
        a, b = linear_fit(x, y)
        assert r_squared(x, y, a, b) < 1.0

    def test_fit_needs_samples(self):
        with pytest.raises(ValidationError):
            linear_fit([1.0], [1.0])

    def test_convergence_order(self):
        # Errors quartering with halving h -> order 2.
        errors = [1.0, 0.25, 0.0625]
        assert convergence_order(errors, [2.0, 2.0]) == pytest.approx(2.0)

    def test_convergence_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            convergence_order([1.0, 0.0], [2.0])


class TestReport:
    def test_format_table_aligned(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) == 1  # rectangular

    def test_format_series(self):
        text = format_series(
            "sockets", {"aoba": [1.0, 2.0], "squid": [3.0, 4.0]}, [4, 8]
        )
        assert "sockets" in text and "aoba" in text
        assert "4" in text and "8" in text

    def test_paper_vs_measured(self):
        text = paper_vs_measured([("runtime", 82, 94)], title="Fig 15")
        assert "Fig 15" in text
        assert "paper" in text and "measured" in text
