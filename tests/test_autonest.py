"""Tests for the automatic nest builder (repro.topo.autonest)."""

import numpy as np
import pytest

from repro.errors import CFLError, GridError
from repro.grid.hierarchy import NestedGrid
from repro.topo.autonest import (
    AutoNestConfig,
    _dilate,
    build_auto_nest,
    mask_to_rectangles,
)
from repro.topo.bathymetry import ShelfBathymetry

BATHY = ShelfBathymetry(
    ocean_depth=3000.0,
    shelf_width=7500.0,
    coast_y=9_000.0,
    coast_amplitude=150.0,
    coast_wavelength=6_000.0,
    land_slope=0.02,
)
DOMAIN = (30_000.0, 30_000.0)


class TestMaskToRectangles:
    def test_single_rectangle(self):
        mask = np.zeros((6, 8), dtype=bool)
        mask[1:4, 2:6] = True
        assert mask_to_rectangles(mask) == [(2, 1, 6, 4)]

    def test_exact_cover_arbitrary_mask(self):
        rng = np.random.default_rng(0)
        mask = rng.random((20, 20)) < 0.4
        rects = mask_to_rectangles(mask)
        rebuilt = np.zeros_like(mask)
        for i0, j0, i1, j1 in rects:
            assert not rebuilt[j0:j1, i0:i1].any(), "rectangles overlap"
            rebuilt[j0:j1, i0:i1] = True
        assert np.array_equal(rebuilt, mask)

    def test_empty_mask(self):
        assert mask_to_rectangles(np.zeros((4, 4), dtype=bool)) == []

    def test_l_shape(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[0:2, 0:4] = True
        mask[2:4, 0:2] = True
        rects = mask_to_rectangles(mask)
        total = sum((i1 - i0) * (j1 - j0) for i0, j0, i1, j1 in rects)
        assert total == mask.sum()


class TestDilate:
    def test_grows_by_one(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[2, 2] = True
        out = _dilate(mask, 1)
        assert out.sum() == 5  # plus-shaped neighborhood
        assert out[2, 1] and out[1, 2]

    def test_zero_cells_identity(self):
        mask = np.zeros((3, 3), dtype=bool)
        mask[1, 1] = True
        assert np.array_equal(_dilate(mask, 0), mask)


class TestBuildAutoNest:
    @pytest.fixture(scope="class")
    def grid(self):
        cfg = AutoNestConfig(
            n_levels=3, dx_coarsest=270.0, dt=0.5,
            coastal_band_m=400.0,
        )
        return build_auto_nest(BATHY, *DOMAIN, cfg)

    def test_produces_valid_nested_grid(self, grid):
        assert isinstance(grid, NestedGrid)
        assert grid.n_levels == 3
        assert grid.level(2).n_blocks >= 1
        assert grid.level(3).n_blocks >= 1

    def test_fine_levels_track_the_coast(self, grid):
        # Every level >= 2 block must contain at least one near-coast cell.
        for lvl in grid.levels[1:]:
            for blk in lvl.blocks:
                depth = BATHY.sample_cells(
                    blk.gi0 * lvl.dx, blk.gj0 * lvl.dx, blk.nx, blk.ny, lvl.dx
                )
                assert (np.abs(depth) < 1500.0).any()

    def test_fine_levels_avoid_deep_ocean(self, grid):
        # The finest level must not cover the 3000 m abyss.
        lvl = grid.levels[-1]
        for blk in lvl.blocks:
            depth = BATHY.sample_cells(
                blk.gi0 * lvl.dx, blk.gj0 * lvl.dx, blk.nx, blk.ny, lvl.dx
            )
            assert depth.max() < 2500.0

    def test_cfl_safe_by_construction(self, grid):
        from repro.grid.cfl import check_cfl_depth_field

        for lvl in grid.levels:
            for blk in lvl.blocks:
                depth = BATHY.sample_cells(
                    blk.gi0 * lvl.dx, blk.gj0 * lvl.dx, blk.nx, blk.ny, lvl.dx
                )
                check_cfl_depth_field(lvl.dx, 0.5, depth)

    def test_runs_in_the_model(self, grid):
        from repro.core import RTiModel, SimulationConfig
        from repro.fault import GaussianSource

        model = RTiModel(grid, BATHY, SimulationConfig(dt=0.5))
        model.set_initial_condition(
            GaussianSource(x0=15_000.0, y0=20_000.0, amplitude=1.0,
                           sigma=2_000.0)
        )
        model.run(60)
        for st in model.states.values():
            assert np.isfinite(st.z_old).all()

    def test_single_level_degenerate(self):
        cfg = AutoNestConfig(n_levels=1, dx_coarsest=270.0, dt=0.5)
        g = build_auto_nest(BATHY, *DOMAIN, cfg)
        assert g.n_levels == 1

    def test_cfl_violation_raises(self):
        # dt far too large for the coarse grid over 3000 m of water.
        cfg = AutoNestConfig(n_levels=1, dx_coarsest=90.0, dt=2.0)
        with pytest.raises(CFLError):
            build_auto_nest(BATHY, *DOMAIN, cfg)

    def test_no_coast_raises(self):
        from repro.validation import FlatBathymetry

        cfg = AutoNestConfig(n_levels=2, dx_coarsest=270.0, dt=0.5,
                             coastal_band_m=10.0)
        with pytest.raises(GridError):
            build_auto_nest(FlatBathymetry(3000.0), *DOMAIN, cfg)

    def test_config_validation(self):
        with pytest.raises(GridError):
            AutoNestConfig(n_levels=0)
        with pytest.raises(GridError):
            AutoNestConfig(band_shrink=1.5)
