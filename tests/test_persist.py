"""Tests for the durable run store (repro.persist).

Covers the on-disk building blocks: checksummed array round-trips
(including a Hypothesis property across dtypes and shapes), atomic
snapshot publication, full-model snapshot/restore bitwise identity,
torn-write and bit-flip detection, the write-ahead journal's torn-tail
tolerance, and the CheckpointRing disk-spill policy.  The end-to-end
kill-and-resume scenarios live in ``tests/test_resume.py``.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import RTiModel, SimulationConfig
from repro.errors import PersistError
from repro.fault import GaussianSource
from repro.grid.block import Block
from repro.grid.hierarchy import NestedGrid
from repro.grid.level import GridLevel
from repro.persist import (
    SCHEMA_VERSION,
    RunJournal,
    RunStore,
    array_digest,
    grid_fingerprint,
    read_arrays,
    read_journal,
    read_snapshot,
    restore_snapshot,
    verify_snapshot,
    write_arrays,
    write_snapshot,
)
from repro.resilience import CheckpointRing
from repro.validation import FlatBathymetry


def tiny_grid() -> NestedGrid:
    return NestedGrid(
        levels=[
            GridLevel(index=1, dx=300.0, blocks=[Block(0, 1, 0, 0, 12, 12)]),
            GridLevel(index=2, dx=100.0, blocks=[Block(1, 2, 9, 9, 12, 12)]),
        ]
    )


def tiny_model(n_steps: int = 0) -> RTiModel:
    model = RTiModel(
        tiny_grid(), FlatBathymetry(depth=50.0), SimulationConfig(dt=1.0)
    )
    model.set_initial_condition(
        GaussianSource(x0=1_800.0, y0=1_800.0, amplitude=1.0, sigma=600.0)
    )
    if n_steps:
        model.run(n_steps)
    return model


def assert_models_bitwise_equal(a: RTiModel, b: RTiModel) -> None:
    assert a.step_count == b.step_count
    assert a.time == b.time
    for bid in a.states:
        sa, sb = a.states[bid].state_arrays(), b.states[bid].state_arrays()
        for key in sa:
            np.testing.assert_array_equal(sa[key], sb[key])
        oa = a.outputs[bid].product_arrays()
        ob = b.outputs[bid].product_arrays()
        for key in oa:
            np.testing.assert_array_equal(oa[key], ob[key])


class TestArrayRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        data=st.data(),
        dtype=st.sampled_from([np.float32, np.float64]),
        shape=st.tuples(
            st.integers(1, 8), st.integers(1, 8), st.integers(1, 8)
        ),
    )
    def test_round_trip_property(self, tmp_path_factory, data, dtype, shape):
        arr = data.draw(
            hnp.arrays(
                dtype,
                shape,
                elements=st.floats(
                    -1e6, 1e6, allow_nan=False, width=32
                ),
            )
        )
        path = tmp_path_factory.mktemp("npz") / "a.npz"
        digests = write_arrays(path, {"a": arr})
        out = read_arrays(path, digests)
        assert out["a"].dtype == arr.dtype
        np.testing.assert_array_equal(out["a"], arr)

    def test_digest_is_dtype_and_shape_sensitive(self):
        a = np.zeros((4, 4), dtype=np.float64)
        assert array_digest(a) != array_digest(a.astype(np.float32))
        assert array_digest(a) != array_digest(a.reshape(2, 8))

    def test_checksum_mismatch_detected(self, tmp_path):
        path = tmp_path / "a.npz"
        digests = write_arrays(path, {"a": np.arange(16.0)})
        digests["a"] = "0" * 64
        with pytest.raises(PersistError, match="checksum mismatch"):
            read_arrays(path, digests)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "a.npz"
        write_arrays(path, {"a": np.arange(256.0)})
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(PersistError):
            read_arrays(path, None)

    def test_missing_key_detected(self, tmp_path):
        path = tmp_path / "a.npz"
        write_arrays(path, {"a": np.arange(4.0)})
        with pytest.raises(PersistError, match="missing arrays"):
            read_arrays(path, {"a": array_digest(np.arange(4.0)), "b": "x"})


class TestSnapshot:
    def test_round_trip_is_bitwise(self, tmp_path):
        model = tiny_model(n_steps=13)
        write_snapshot(model, tmp_path / "snap")
        fresh = tiny_model()
        snap = read_snapshot(tmp_path / "snap")
        assert snap.schema_version == SCHEMA_VERSION
        restore_snapshot(fresh, snap)
        assert_models_bitwise_equal(model, fresh)

    def test_restore_then_run_matches_uninterrupted(self, tmp_path):
        reference = tiny_model(n_steps=20)
        model = tiny_model(n_steps=8)
        write_snapshot(model, tmp_path / "snap")
        fresh = tiny_model()
        restore_snapshot(fresh, read_snapshot(tmp_path / "snap"))
        fresh.run(12)
        assert_models_bitwise_equal(reference, fresh)

    def test_no_tmp_dir_left_behind(self, tmp_path):
        write_snapshot(tiny_model(n_steps=2), tmp_path / "snap")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "snap"]
        assert leftovers == []

    def test_existing_destination_refused(self, tmp_path):
        model = tiny_model(n_steps=1)
        write_snapshot(model, tmp_path / "snap")
        with pytest.raises(PersistError, match="already exists"):
            write_snapshot(model, tmp_path / "snap")

    def test_verify_detects_member_bitflip(self, tmp_path):
        model = tiny_model(n_steps=5)
        snapdir = write_snapshot(model, tmp_path / "snap")
        assert verify_snapshot(snapdir) == []
        victim = snapdir / "level_2.npz"
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        problems = verify_snapshot(snapdir)
        assert problems and "level_2.npz" in problems[0]

    def test_schema_version_gate(self, tmp_path):
        snapdir = write_snapshot(tiny_model(n_steps=1), tmp_path / "snap")
        mpath = snapdir / "manifest.json"
        manifest = json.loads(mpath.read_text())
        manifest["schema_version"] = SCHEMA_VERSION + 1
        mpath.write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="schema version"):
            read_snapshot(snapdir)

    def test_fingerprint_mismatch_refused(self, tmp_path):
        model = tiny_model(n_steps=3)
        snapdir = write_snapshot(model, tmp_path / "snap")
        other = RTiModel(
            NestedGrid(
                levels=[
                    GridLevel(
                        index=1, dx=300.0, blocks=[Block(0, 1, 0, 0, 15, 12)]
                    )
                ]
            ),
            FlatBathymetry(depth=50.0),
            SimulationConfig(dt=1.0),
        )
        with pytest.raises(PersistError, match="different grid"):
            restore_snapshot(other, read_snapshot(snapdir))

    def test_fingerprint_depends_on_dtype_and_topology(self):
        grid = tiny_grid()
        assert grid_fingerprint(grid, np.float64) != grid_fingerprint(
            grid, np.float32
        )
        assert grid_fingerprint(grid) == grid_fingerprint(tiny_grid())


class TestJournal:
    def test_append_and_read(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.record("run_start", n_steps=10)
        journal.record("checkpoint", step=5)
        events, warning = read_journal(tmp_path / "j.jsonl")
        assert warning is None
        assert [ev["event"] for ev in events] == ["run_start", "checkpoint"]
        assert [ev["seq"] for ev in events] == [1, 2]

    def test_torn_tail_dropped_with_warning(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.record("run_start")
        journal.record("checkpoint", step=5)
        with open(path, "a") as fh:
            fh.write('{"seq": 3, "event": "checkpo')  # crash mid-append
        events, warning = read_journal(path)
        assert len(events) == 2
        assert warning is not None and "torn" in warning

    def test_seq_resumes_after_reopen(self, tmp_path):
        path = tmp_path / "j.jsonl"
        RunJournal(path).record("run_start")
        rec = RunJournal(path).record("resume")
        assert rec["seq"] == 2


class TestRunStore:
    def test_layout_and_status(self, tmp_path):
        store = RunStore(tmp_path / "run")
        assert store.status() == "empty"
        store.record_event("run_start", n_steps=5)
        assert store.status() == "incomplete"
        store.record_event("complete", step=5)
        assert store.status() == "complete"

    def test_save_snapshot_sequences_and_journals(self, tmp_path):
        store = RunStore(tmp_path / "run")
        model = tiny_model(n_steps=4)
        store.save_snapshot(model)
        model.run(4)
        store.save_snapshot(model)
        names = [p.name for p in store.snapshot_paths()]
        assert names == ["ck_00001_step_00000004", "ck_00002_step_00000008"]
        events = [ev["event"] for ev in store.events()]
        assert events == [
            "checkpoint_begin", "checkpoint",
            "checkpoint_begin", "checkpoint",
        ]

    def test_tmp_dirs_ignored(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.save_snapshot(tiny_model(n_steps=2))
        (store.snapshots_dir / ".tmp-ck_00009_step_00000099-1").mkdir()
        assert len(store.snapshot_paths()) == 1

    def test_latest_valid_falls_back_over_corruption(self, tmp_path):
        store = RunStore(tmp_path / "run")
        model = tiny_model()
        for _ in range(3):
            model.run(5)
            store.save_snapshot(model)
        newest = store.snapshot_paths()[-1]
        member = newest / "level_1.npz"
        member.write_bytes(member.read_bytes()[:64])  # torn write
        warnings: list[str] = []
        snap = store.latest_valid_snapshot(warn=warnings.append)
        assert snap is not None and snap.step == 10
        assert len(warnings) == 1 and newest.name in warnings[0]

    def test_latest_valid_none_when_all_corrupt(self, tmp_path):
        store = RunStore(tmp_path / "run")
        store.save_snapshot(tiny_model(n_steps=3))
        for path in store.snapshot_paths():
            (path / "manifest.json").write_text("not json")
        assert store.latest_valid_snapshot() is None


class TestCheckpointRingSpill:
    def test_ring_spills_on_cadence(self, tmp_path):
        store = RunStore(tmp_path / "run")
        ring = CheckpointRing(capacity=4, store=store, spill_every=2)
        model = tiny_model()
        for _ in range(4):
            model.run(3)
            ring.snapshot(model)
        assert ring.taken == 4
        assert ring.spilled == 2
        steps = [
            json.loads((p / "manifest.json").read_text())["step"]
            for p in store.snapshot_paths()
        ]
        assert steps == [3, 9]

    def test_ring_without_store_never_spills(self, tmp_path):
        ring = CheckpointRing(capacity=2)
        model = tiny_model(n_steps=2)
        ring.snapshot(model)
        assert ring.spilled == 0

    def test_spill_failure_raises_persist_error(self, tmp_path):
        store = RunStore(tmp_path / "run")
        ring = CheckpointRing(capacity=2, store=store, spill_every=1)
        model = tiny_model(n_steps=2)
        store.snapshots_dir.rmdir()
        store.snapshots_dir.write_text("")  # a file where a dir must be
        with pytest.raises(PersistError):
            ring.snapshot(model)
