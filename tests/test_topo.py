"""Tests for repro.topo: bathymetry generators, block synthesis, Kochi."""

import numpy as np
import pytest

from repro.errors import GridError
from repro.grid.hierarchy import NestedGrid
from repro.topo import (
    KOCHI_TABLE1,
    GaussianIslandField,
    ShelfBathymetry,
    build_kochi_grid,
    build_mini_kochi,
    factor_near_aspect,
    kochi_table,
    split_cells_into_blocks,
)
from repro.topo.blockgen import wrap_into_rows


class TestShelfBathymetry:
    def setup_method(self):
        self.b = ShelfBathymetry()

    def test_deep_far_offshore(self):
        d = self.b.depth(0.0, 1.0e6)
        assert d == pytest.approx(self.b.ocean_depth, rel=1e-3)

    def test_dry_on_land(self):
        assert self.b.depth(0.0, 0.0) < 0.0

    def test_zero_at_coastline(self):
        x = 123_456.0
        y = float(self.b.coastline(x))
        assert abs(float(self.b.depth(x, y))) < 1e-9

    def test_monotone_offshore(self):
        ys = np.linspace(self.b.coast_y + 30_000, 900_000, 50)
        d = self.b.depth(np.zeros_like(ys), ys)
        assert np.all(np.diff(d) >= 0)

    def test_sample_cells_shape_and_consistency(self):
        arr = self.b.sample_cells(0.0, 0.0, 8, 5, 1000.0)
        assert arr.shape == (5, 8)
        # Cell (j, i) center must equal a point query.
        assert arr[2, 3] == pytest.approx(
            float(self.b.depth(3500.0, 2500.0))
        )

    def test_multi_resolution_consistency(self):
        # Parent and child sample the same analytic surface: a child cell
        # center inside a parent cell must have a nearby depth value.
        coarse = self.b.sample_cells(0.0, 200_000.0, 4, 4, 900.0)
        fine = self.b.sample_cells(0.0, 200_000.0, 12, 12, 300.0)
        agg = fine.reshape(4, 3, 4, 3).mean(axis=(1, 3))
        assert np.allclose(agg, coarse, rtol=1e-3, atol=2.0)


class TestGaussianIslandField:
    def test_deterministic_in_seed(self):
        a = GaussianIslandField(seed=7).centers()
        b = GaussianIslandField(seed=7).centers()
        assert np.array_equal(a, b)
        c = GaussianIslandField(seed=8).centers()
        assert not np.array_equal(a, c)

    def test_apply_reduces_depth(self):
        f = GaussianIslandField(n_islands=1, height=1000.0, seed=0)
        cx, cy = f.centers()[0]
        base = np.array([[2000.0]])
        out = f.apply(base, np.array([[cx]]), np.array([[cy]]))
        assert out[0, 0] == pytest.approx(1000.0)


class TestBlockGen:
    def test_factor_near_aspect_exact(self):
        nx, ny = factor_near_aspect(12, 6)
        assert nx * ny == 9 * 12
        assert nx % 3 == 0 and ny % 3 == 0

    def test_factor_rejects_bad_aspect(self):
        # 9*prime only factors 1 x p: aspect too extreme.
        assert factor_near_aspect(9973, 300, max_aspect=4.0) is None

    @pytest.mark.parametrize("profile", ["uniform", "heavy"])
    def test_split_exact_total(self, profile):
        total = 9 * 123_456
        dims = split_cells_into_blocks(
            total, 12, ny_target=99, seed=3, profile=profile
        )
        assert len(dims) == 12
        assert sum(nx * ny for nx, ny in dims) == total
        assert all(nx % 3 == 0 and ny % 3 == 0 for nx, ny in dims)

    def test_split_deterministic(self):
        a = split_cells_into_blocks(9 * 10_000, 5, 30, seed=1)
        b = split_cells_into_blocks(9 * 10_000, 5, 30, seed=1)
        assert a == b

    def test_split_rejects_bad_total(self):
        with pytest.raises(GridError):
            split_cells_into_blocks(100, 2, 3)

    def test_split_single_block(self):
        dims = split_cells_into_blocks(9 * 400, 1, 60)
        assert len(dims) == 1
        assert dims[0][0] * dims[0][1] == 3600

    def test_heavy_profile_has_spread(self):
        dims = split_cells_into_blocks(
            9 * 4_000_000, 40, ny_target=300, seed=0, profile="heavy"
        )
        sizes = sorted(nx * ny for nx, ny in dims)
        assert sizes[-1] / sizes[0] > 3.0

    def test_wrap_into_rows(self):
        dims = [(30, 9), (30, 9), (30, 9), (60, 9)]
        rows = wrap_into_rows(dims, max_row_width=70)
        assert rows == [[0, 1], [2], [3]]

    def test_wrap_rejects_oversized_block(self):
        with pytest.raises(GridError):
            wrap_into_rows([(100, 9)], max_row_width=50)


class TestKochiGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        return build_kochi_grid()

    def test_matches_table1_exactly(self, grid):
        for idx, (dx, n_blocks, n_cells) in KOCHI_TABLE1.items():
            level = grid.level(idx)
            assert level.dx == dx
            assert level.n_blocks == n_blocks
            assert level.n_cells == n_cells
        assert grid.n_blocks == 84
        assert grid.n_cells == 47_211_444

    def test_is_a_valid_nested_grid(self, grid):
        assert isinstance(grid, NestedGrid)
        assert grid.ratio == 3

    def test_deterministic(self):
        a = build_kochi_grid(seed=5)
        b = build_kochi_grid(seed=5)
        assert [blk.n_cells for blk in a.all_blocks()] == [
            blk.n_cells for blk in b.all_blocks()
        ]

    def test_kochi_table_report(self, grid):
        rows = kochi_table(grid)
        assert rows[-1]["cells_built"] == rows[-1]["cells_paper"]
        assert all(r["blocks_built"] == r["blocks_paper"] for r in rows)

    def test_level5_blocks_heavy_tailed(self, grid):
        sizes = [b.n_cells for b in grid.level(5).blocks]
        assert max(sizes) / min(sizes) > 5.0


class TestMiniKochi:
    def test_structure(self):
        mk = build_mini_kochi()
        assert mk.grid.n_levels == 5
        assert mk.grid.ratio == 3
        assert mk.grid.n_cells < 100_000

    def test_cfl_safe_everywhere(self):
        from repro.grid.cfl import check_cfl_depth_field

        mk = build_mini_kochi()
        for lvl in mk.grid.levels:
            for blk in lvl.blocks:
                depth = mk.bathymetry.sample_cells(
                    blk.gi0 * lvl.dx, blk.gj0 * lvl.dx, blk.nx, blk.ny, lvl.dx
                )
                check_cfl_depth_field(lvl.dx, mk.dt, depth)

    def test_fine_levels_reach_the_coast(self):
        mk = build_mini_kochi()
        lvl5 = mk.grid.level(5)
        wet = dry = 0
        for blk in lvl5.blocks:
            depth = mk.bathymetry.sample_cells(
                blk.gi0 * 10.0, blk.gj0 * 10.0, blk.nx, blk.ny, 10.0
            )
            wet += int((depth > 0).sum())
            dry += int((depth <= 0).sum())
        # The finest level must straddle the shoreline (that is its job).
        assert wet > 0 and dry > 0
