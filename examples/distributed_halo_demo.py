#!/usr/bin/env python3
"""Distributed-memory demo: the pack/exchange/unpack pipeline over MPI.

Demonstrates that the Listing-4 offset packing + simulated-MPI transport
reproduces the direct in-memory halo exchange *bit for bit*: two ranks
each own one block of a split domain, fill the ghost layers of a freshly
computed wave field over the communicator, and the result is compared
against :func:`repro.xchg.halo.exchange_halo` on the same data.

This is the correctness contract the paper's communication migration
relies on (Section IV-C): reorganizing how boundaries are packed and
moved must not change a single value.

Run:  python examples/distributed_halo_demo.py
"""

import numpy as np

from repro.core.state import BlockState
from repro.fault import GaussianSource
from repro.grid.block import Block
from repro.grid.staggered import NGHOST
from repro.par import run_ranks
from repro.xchg.halo import exchange_halo
from repro.xchg.packing import pack_boundary_offsets, unpack_boundary_offsets

NX, NY, DX = 48, 64, 100.0
G = NGHOST
BLOCKS = [Block(0, 1, 0, 0, NX, NY), Block(1, 1, NX, 0, NX, NY)]
SOURCE = GaussianSource(x0=4800.0, y0=3200.0, amplitude=1.0, sigma=900.0)


def make_state(block: Block) -> BlockState:
    st = BlockState(block, DX, np.full((block.ny, block.nx), 50.0))
    xs = (block.gi0 + np.arange(-G, block.nx + G) + 0.5) * DX
    ys = (block.gj0 + np.arange(-G, block.ny + G) + 0.5) * DX
    st.z_new[...] = SOURCE.eta(xs[None, :], ys[:, None])
    return st


def reference_exchange() -> tuple[np.ndarray, np.ndarray]:
    """Ground truth: direct in-memory ghost copy."""
    west, east = make_state(BLOCKS[0]), make_state(BLOCKS[1])
    exchange_halo(west, east, "z")
    return west.z_new.copy(), east.z_new.copy()


def mpi_exchange() -> tuple[np.ndarray, np.ndarray]:
    """The same exchange as pack -> MPI send/recv -> unpack."""

    def rank_main(comm):
        st = make_state(BLOCKS[comm.rank])
        z = st.z_new
        other = 1 - comm.rank
        rows = slice(0, z.shape[0])  # full padded rows (the halo protocol)
        if comm.rank == 0:  # west: send last G physical cols, recv ghosts
            send_region = (rows, slice(G + NX - G, G + NX))
            recv_region = (rows, slice(G + NX, G + NX + G))
        else:  # east: send first G physical cols, recv west ghosts
            send_region = (rows, slice(G, 2 * G))
            recv_region = (rows, slice(0, G))
        comm.send(pack_boundary_offsets([z], send_region), dest=other)
        unpack_boundary_offsets(comm.recv(source=other), [z], recv_region)
        return z

    west_z, east_z = run_ranks(2, rank_main, timeout=60.0)
    return west_z, east_z


def main() -> None:
    print(f"Two blocks of {NX}x{NY} cells sharing a vertical seam")
    ref_w, ref_e = reference_exchange()
    mpi_w, mpi_e = mpi_exchange()
    dw = np.abs(ref_w - mpi_w).max()
    de = np.abs(ref_e - mpi_e).max()
    print(f"ghost values moved per side : {G} layers x {ref_w.shape[0]} rows")
    print(f"max |direct - MPI| (west)   : {dw:.1e}")
    print(f"max |direct - MPI| (east)   : {de:.1e}")
    assert dw == 0.0 and de == 0.0, "pipelines disagree!"
    print("PASS: offset packing over simulated MPI is bitwise identical "
          "to the direct halo exchange")


if __name__ == "__main__":
    main()
