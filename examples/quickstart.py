#!/usr/bin/env python3
"""Quickstart: a tsunami on the five-level mini-Kochi grid in ~30 lines.

Builds the laptop-scale nested grid (same 3:1 five-level topology as the
operational Kochi model), drops a Gaussian hump offshore, integrates the
nonlinear shallow-water equations for two simulated minutes, and prints
the forecast products the operational system would deliver.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import RTiModel, SimulationConfig
from repro.fault import GaussianSource
from repro.topo import build_mini_kochi


def main() -> None:
    mk = build_mini_kochi()
    print("Grid:")
    print(mk.grid.summary())

    model = RTiModel(mk.grid, mk.bathymetry, SimulationConfig(dt=mk.dt))
    model.set_initial_condition(
        GaussianSource(x0=4_000.0, y0=16_000.0, amplitude=2.0, sigma=2_500.0)
    )

    n_steps = 1200  # two simulated minutes at dt = 0.1 s
    print(f"\nIntegrating {n_steps} steps (dt = {mk.dt} s) ...")
    model.run(n_steps)

    print(f"simulated time      : {model.time:6.1f} s")
    print(f"max water level     : {model.max_eta():6.2f} m")
    print(f"max flow speed      : {model.max_speed():6.2f} m/s")

    level5 = mk.grid.level(5)
    area = sum(
        model.outputs[b.block_id].inundated_area(level5.dx)
        for b in level5.blocks
    )
    arrivals = [
        model.outputs[b.block_id].arrival_time for b in level5.blocks
    ]
    first = min(
        (float(np.min(a[np.isfinite(a)])) for a in arrivals if np.isfinite(a).any()),
        default=float("inf"),
    )
    print(f"inundated land area : {area:8.0f} m^2 (10 m grid)")
    print(f"first coastal arrival: {first:6.1f} s")


if __name__ == "__main__":
    main()
