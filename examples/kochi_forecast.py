#!/usr/bin/env python3
"""Operational-style forecast: Okada fault source -> nested inundation run.

Mirrors the operational pipeline the paper's system executes after an
earthquake: estimate a fault model (here: a preset Nankai-like multi-
segment thrust scaled to the mini domain), convert the co-seismic seafloor
displacement into the initial water level, run the nested simulation, and
report per-level forecast products.

Run:  python examples/kochi_forecast.py
"""

import numpy as np

from repro.core import RTiModel, SimulationConfig
from repro.core.gauges import GaugeRecorder
from repro.damage import assess_damage
from repro.fault import OkadaFault
from repro.fault.scenarios import moment_magnitude
from repro.topo import build_mini_kochi


def mini_fault_scenario() -> list[OkadaFault]:
    """A two-segment offshore thrust sized for the 29 x 36 km mini domain."""
    return [
        OkadaFault(
            x0=3_500.0, y0=20_000.0, depth_top=2_000.0,
            strike_deg=90.0, dip_deg=12.0, rake_deg=90.0,
            slip=2.5, length=5_000.0, width=5_000.0,
        ),
        OkadaFault(
            x0=6_500.0, y0=21_000.0, depth_top=2_500.0,
            strike_deg=90.0, dip_deg=12.0, rake_deg=90.0,
            slip=1.8, length=5_000.0, width=5_000.0,
        ),
    ]


def main() -> None:
    mk = build_mini_kochi()
    faults = mini_fault_scenario()
    print(f"Fault model: {len(faults)} segments, "
          f"Mw = {moment_magnitude(faults):.2f}")

    model = RTiModel(mk.grid, mk.bathymetry, SimulationConfig(dt=mk.dt))
    model.set_initial_condition(faults)

    print(f"initial max eta: {model.max_eta():.2f} m")

    # Virtual tide gauges: one on the open shelf, one in the 10 m nest.
    gauges = GaugeRecorder(
        model,
        [("shelf", 5_000.0, 12_000.0), ("harbor", 3_000.0, 9_200.0)],
    )
    horizon = 3000  # five simulated minutes
    gauges.run_and_record(horizon, every=50)

    print("\nPer-level forecast products:")
    print(f"{'level':>5} {'dx':>6} {'zmax [m]':>9} {'vmax':>6} "
          f"{'inundated [m^2]':>16} {'first arrival [s]':>18}")
    for lvl in mk.grid.levels:
        zmax = vmax = 0.0
        area = 0.0
        first = float("inf")
        for blk in lvl.blocks:
            acc = model.outputs[blk.block_id]
            zmax = max(zmax, float(acc.zmax.max()))
            vmax = max(vmax, float(acc.vmax.max()))
            area += acc.inundated_area(lvl.dx)
            finite = acc.arrival_time[np.isfinite(acc.arrival_time)]
            if finite.size:
                first = min(first, float(finite.min()))
        arrival = f"{first:18.1f}" if np.isfinite(first) else f"{'-':>18}"
        print(f"{lvl.index:>5} {lvl.dx:>6.0f} {zmax:>9.3f} {vmax:>6.2f} "
              f"{area:>16.0f} {arrival}")

    print("\nTide gauges:")
    print(gauges.summary())

    damage = assess_damage(model)
    print("\nDamage estimate (synthetic coastal building stock, 10 m grid):")
    print(f"  buildings exposed : {damage.buildings_exposed:8.0f}")
    print(f"  expected damaged  : {damage.buildings_damaged:8.1f} "
          f"(ratio {damage.damage_ratio:.3f})")
    print(f"  population exposed: {damage.population_exposed:8.0f}")


if __name__ == "__main__":
    main()
