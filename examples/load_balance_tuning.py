#!/usr/bin/env python3
"""Load-balance tuning walkthrough (Section IV-D end to end).

1. Microbenchmark the NLMNT2 kernel on the A100 model and fit the linear
   performance model (Fig. 5).
2. Show the baseline cell-equalizing decomposition's block-count imbalance
   (Fig. 4).
3. Run Algorithm 1 (two-phase hill climbing over separators) and compare
   per-rank NLMNT2 times before/after (Figs. 8, 9, 12).

Run:  python examples/load_balance_tuning.py
"""

from repro.analysis import format_series, format_table
from repro.balance import fit_linear_model, measure_kernel_runtimes
from repro.balance.apply import fit_platform_model, optimized_decomposition
from repro.hw import LaunchMode, StreamSimulator, get_system
from repro.par.decomposition import equal_cell_assignment
from repro.runtime import ExecutionConfig, build_routine_kernels
from repro.topo import build_kochi_grid


def nlmnt2_times(decomp, platform):
    out = []
    for rw in decomp.ranks:
        sim = StreamSimulator(platform, n_queues=4, mode=LaunchMode.ASYNC)
        sim.submit_all(
            build_routine_kernels(rw, "NLMNT2", platform, ExecutionConfig())
        )
        out.append(sim.run().makespan_us)
    return out


def main() -> None:
    platform = get_system("squid-gpu").platform
    grid = build_kochi_grid()

    # --- Step 1: microbenchmark + fit (Fig. 5) -------------------------
    sizes = [50_000, 200_000, 500_000, 1_000_000, 2_000_000]
    times = measure_kernel_runtimes(platform, sizes, traffic_multiplier=1.0)
    fit = fit_linear_model(sizes, times)
    print("Step 1 — NLMNT2 microbenchmark (cache-resident block):")
    print(format_series("cells", {"runtime_us": [f"{t:.1f}" for t in times]}, sizes))
    print(
        f"  fit: t = {fit.slope_us_per_cell:.3e} * cells + "
        f"{fit.intercept_us:.1f} us   (R^2 = {fit.r2:.3f})"
    )
    print("  paper: t = 1.09e-4 * cells + 46.2 us   (R^2 = 0.942)\n")

    # --- Step 2: the baseline decomposition ----------------------------
    base = equal_cell_assignment(grid, 16, split_blocks=False)
    model = fit_platform_model(platform)
    print("Step 2 — baseline (cell-equalizing) decomposition:")
    print(
        format_table(
            ["rank", "cells", "blocks", "model NLMNT2 [us]"],
            [
                [rw.rank, f"{rw.n_cells:,}", rw.n_blocks,
                 f"{model.rank_time_us([i.n_cells for i in rw.items]):.0f}"]
                for rw in base.ranks
            ],
        )
    )

    # --- Step 3: Algorithm 1 --------------------------------------------
    opt = optimized_decomposition(grid, 16, platform, model=model)
    t_base = nlmnt2_times(base, platform)
    t_opt = nlmnt2_times(opt, platform)
    print("\nStep 3 — after two-phase hill climbing (Algorithm 1):")
    print(
        format_series(
            "rank",
            {
                "baseline_us": [f"{t:.0f}" for t in t_base],
                "optimized_us": [f"{t:.0f}" for t in t_opt],
            },
            list(range(len(t_base))),
        )
    )
    print(
        f"\n  max NLMNT2: {max(t_base):.0f} us -> {max(t_opt):.0f} us "
        f"({max(t_base) / max(t_opt):.2f}x)"
    )


if __name__ == "__main__":
    main()
