#!/usr/bin/env python3
"""Cross-platform performance sweep (the Fig.-15 experiment as a script).

Replays the full-scale (47.2 M cell) Kochi forecast schedule through the
discrete-event hardware model for every Table-II system and socket count,
and reports whether each configuration meets the operational 10-minute
deadline of the "10-10-10 challenge".

Run:  python examples/platform_sweep.py [sockets ...]
"""

import sys

from repro.analysis import format_series
from repro.hw import SYSTEMS, get_system
from repro.par.decomposition import build_decomposition
from repro.runtime import ExecutionConfig, simulate_run_seconds
from repro.topo import build_kochi_grid

DEADLINE_S = 600.0


def main(socket_counts: list[int]) -> None:
    grid = build_kochi_grid()
    print("Kochi model:")
    print(grid.summary())
    print(f"\nSix-hour forecast (108,000 steps), deadline {DEADLINE_S:.0f} s\n")

    names = list(SYSTEMS)
    table: dict[str, list[str]] = {n: [] for n in names}
    for name in names:
        system = get_system(name)
        for sockets in socket_counts:
            if system.platform.kind == "gpu" and sockets < 8:
                table[name].append("n/a (no MPS)")
                continue
            n_ranks = (
                sockets if system.platform.kind == "gpu" else max(sockets, 16)
            )
            decomp = build_decomposition(grid, n_ranks)
            seconds = simulate_run_seconds(
                grid, decomp, system, ExecutionConfig(), n_devices=sockets
            )
            flag = "MEETS" if seconds < DEADLINE_S else "misses"
            table[name].append(f"{seconds:7.0f} s  {flag}")
    print(format_series("sockets", table, socket_counts))
    print(
        "\npaper anchors: AOBA-S 640 s @4; SQUID CPU 1636 s @4; "
        "Pegasus CPU 1476 s @4; Pegasus GPU 82 s @32"
    )


if __name__ == "__main__":
    counts = [int(a) for a in sys.argv[1:]] or [4, 8, 16, 32]
    main(counts)
