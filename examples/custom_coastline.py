#!/usr/bin/env python3
"""Bring-your-own-bathymetry: automatic nesting + distributed run.

Demonstrates the adoption path a downstream user follows:

1. supply bathymetry (here: a synthetic shelf with islands);
2. let :func:`repro.topo.build_auto_nest` place CFL-safe nested levels
   along the coastline automatically;
3. run the forecast — once in-process, once distributed across simulated
   MPI ranks — and confirm both agree bit for bit.

Run:  python examples/custom_coastline.py
"""

import numpy as np

from repro.core import RTiModel, SimulationConfig
from repro.fault import GaussianSource
from repro.par import run_distributed
from repro.par.decomposition import equal_cell_assignment
from repro.topo import AutoNestConfig, ShelfBathymetry, build_auto_nest

BATHY = ShelfBathymetry(
    ocean_depth=2500.0,
    shelf_width=6_000.0,
    coast_y=8_000.0,
    coast_amplitude=600.0,
    coast_wavelength=9_000.0,
    land_slope=0.02,
)
DT = 0.5
SOURCE = GaussianSource(x0=13_000.0, y0=18_000.0, amplitude=1.5, sigma=2_000.0)


def main() -> None:
    cfg = AutoNestConfig(
        n_levels=3, dx_coarsest=270.0, dt=DT, coastal_band_m=400.0
    )
    grid = build_auto_nest(BATHY, 27_000.0, 27_000.0, cfg)
    print("Auto-generated nest:")
    print(grid.summary())

    sim_cfg = SimulationConfig(dt=DT)
    model = RTiModel(grid, BATHY, sim_cfg)
    model.set_initial_condition(SOURCE)
    n_steps = 240
    model.run(n_steps)
    print(f"\nIn-process run: {n_steps} steps, "
          f"max eta {model.max_eta():.3f} m")

    n_ranks = min(4, grid.n_blocks)
    decomp = equal_cell_assignment(grid, n_ranks, split_blocks=False)
    dist = run_distributed(grid, BATHY, sim_cfg, decomp, SOURCE, n_steps)
    worst = 0.0
    for bid, eta in dist.items():
        ref = model.states[bid].eta_interior()
        worst = max(worst, float(np.abs(ref - eta).max()))
    print(f"Distributed run over {n_ranks} simulated MPI ranks: "
          f"max |difference| = {worst:.2e} m")
    assert worst == 0.0
    print("PASS: distributed == in-process, bit for bit")


if __name__ == "__main__":
    main()
